"""Bounded channels: the lock-minimal hand-off layer of the native executor.

FastFlow owes its throughput to bounded lock-free SPSC queues with
selectable *blocking* and *non-blocking* (spinning) disciplines; this
module is that layer for the Python runtime.  Three implementations
share one interface (``put`` / ``put_many`` / ``get`` / ``get_many`` /
``qsize``):

* :class:`SpscChannel` — an array-backed single-producer/single-consumer
  ring buffer.  Monotonic ``head``/``tail`` counters published *after*
  the slot write mean the fast paths take no lock at all (the GIL
  serializes the bytecode, giving the required ordering); the condition
  variable is touched only when a side actually has to wait.
* :class:`MpmcChannel` — the fallback for shared edges (multiple
  producers or consumers on one queue): a single mutex around a deque,
  with batched operations amortizing the acquire.
* :class:`QueueChannel` — the pre-channel-layer baseline
  (``queue.Queue`` with timeout polling), kept selectable so the
  benchmark sweep can measure the speedup against it.

Waiting discipline, FastFlow-style:

* **blocking** — a waiter parks on the channel's condition variable and
  is woken by the opposite side publishing space/items (wake-on-space /
  wake-on-item), or by the run's :class:`AbortSignal` firing.
* **spin** — bounded busy-wait: a short burst of plain spins, then
  ``os.sched_yield()`` per iteration with the abort flag checked each
  time.  No locks are ever taken; hand-off latency is lowest, CPU cost
  highest.

Abort is event-driven in both disciplines: every channel registers its
condition with the :class:`AbortSignal`, so a failure elsewhere in the
pipeline wakes blocked producers/consumers immediately instead of being
discovered on a poll timeout.

The **process backend** adds a fourth channel, :class:`ShmChannel`: the
same bounded-ring head/tail discipline laid out as a byte ring in a
``multiprocessing.shared_memory`` segment, carrying length-prefixed
pickled envelope batches across process boundaries.  Cross-process abort
uses :class:`ShmAbortFlag` (one shared byte) since condition variables
do not cross the boundary; shm waiters poll it on their slow path.
"""

from __future__ import annotations

import os
import pickle
import queue
import struct
import threading
import time
from collections import deque
from typing import Any, List, Optional, Sequence

__all__ = [
    "Aborted",
    "AbortSignal",
    "SpscChannel",
    "MpmcChannel",
    "QueueChannel",
    "ShmAbortFlag",
    "ShmChannel",
    "make_channel",
    "CHANNEL_BACKENDS",
]

#: plain busy iterations before a spinning waiter starts yielding the core
_SPIN_FAST = 64

#: sentinel distinguishing "no stop item" from a legitimate ``None`` payload
_NO_STOP = object()

CHANNEL_BACKENDS = ("ring", "queue")


class Aborted(RuntimeError):
    """The run's abort signal fired while waiting on a channel."""


class AbortSignal:
    """Level-triggered failure flag with event-driven waiter wake-up.

    Channels (and anything else that parks threads) register their
    condition variables; :meth:`set` flips the flag and notifies every
    registered condition so waiters re-check state immediately — no
    polling interval anywhere in the abort path.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reg_lock = threading.Lock()
        self._conds: List[threading.Condition] = []

    def register(self, cond: threading.Condition) -> None:
        with self._reg_lock:
            self._conds.append(cond)
        if self._event.is_set():
            # late registration after failure: wake straight away
            with cond:
                cond.notify_all()

    def set(self) -> None:
        self._event.set()
        with self._reg_lock:
            conds = list(self._conds)
        for cond in conds:
            with cond:
                cond.notify_all()

    def is_set(self) -> bool:
        return self._event.is_set()

    def check(self) -> None:
        if self._event.is_set():
            raise Aborted()


class SpscChannel:
    """Bounded SPSC ring buffer with blocking and spin disciplines.

    ``_tail`` counts items ever produced, ``_head`` items ever consumed;
    occupancy is their difference and slot ``i % capacity`` holds item
    ``i``.  The producer writes the slot *before* publishing ``_tail``
    (and symmetrically for the consumer), so under the GIL's sequential
    execution the opposite side never observes an unpublished slot.

    In blocking mode a side that must wait sets its ``*_waiting`` flag
    *before* re-checking state under the condition lock; the opposite
    side publishes first and reads the flag second.  Either the waiter's
    re-check sees the published update, or the publisher sees the flag
    and notifies — a wake-up can't be lost.
    """

    __slots__ = ("_buf", "_cap", "_head", "_tail", "_abort", "_blocking",
                 "_cond", "_put_waiting", "_get_waiting", "_weigh",
                 "_wput", "_wgot")

    def __init__(self, capacity: int, abort: AbortSignal,
                 blocking: bool = True, weigh=None):
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        self._buf: List[Any] = [None] * capacity
        self._cap = capacity
        self._head = 0  # items consumed
        self._tail = 0  # items produced
        self._abort = abort
        self._blocking = blocking
        self._cond = threading.Condition()
        abort.register(self._cond)
        self._put_waiting = False
        self._get_waiting = False
        #: optional logical-weight hook (columnar edges): maps one queued
        #: entry to the number of stream items it carries, so occupancy
        #: gauges keep reporting items when an entry is a whole ItemBlock.
        #: The two weight counters follow the ring's single-writer
        #: discipline (producer owns ``_wput``, consumer ``_wgot``).
        self._weigh = weigh
        self._wput = 0
        self._wgot = 0

    def qsize(self) -> int:
        return self._tail - self._head

    def qsize_items(self) -> int:
        """Logical items queued (equals :meth:`qsize` without a weigher)."""
        if self._weigh is None:
            return self._tail - self._head
        n = self._wput - self._wgot
        return n if n > 0 else 0

    def set_blocking(self, blocking: bool) -> bool:
        """Flip the waiting discipline live (autonomic controller lever).

        Safe mid-run: a parked waiter's ``while not ready()`` loop
        re-checks state after the ``notify_all``, and a spinning waiter
        finishes its current spin either way — only *future* waits adopt
        the new discipline.
        """
        with self._cond:
            self._blocking = blocking
            self._cond.notify_all()
        return True

    # -- waiting -----------------------------------------------------------
    def _spin(self, ready) -> None:
        spins = 0
        while not ready():
            spins += 1
            if spins > _SPIN_FAST:
                self._abort.check()
                os.sched_yield()

    def _park(self, ready, flag: str) -> None:
        with self._cond:
            setattr(self, flag, True)
            try:
                while not ready():
                    self._abort.check()
                    self._cond.wait()
            finally:
                setattr(self, flag, False)

    def _wait_for_space(self) -> None:
        ready = lambda: self._tail - self._head < self._cap  # noqa: E731
        if self._blocking:
            self._park(ready, "_put_waiting")
        else:
            self._spin(ready)

    def _wait_for_items(self) -> None:
        ready = lambda: self._tail - self._head > 0  # noqa: E731
        if self._blocking:
            self._park(ready, "_get_waiting")
        else:
            self._spin(ready)

    # -- producer side -----------------------------------------------------
    def put(self, item: Any) -> None:
        tail = self._tail
        if tail - self._head >= self._cap:
            self._wait_for_space()
        self._buf[tail % self._cap] = item
        if self._weigh is not None:
            self._wput += self._weigh(item)
        self._tail = tail + 1
        if self._get_waiting:
            with self._cond:
                self._cond.notify()

    def put_many(self, items: Sequence[Any]) -> None:
        """Multi-push: write as many free slots as available per episode."""
        buf, cap = self._buf, self._cap
        i, n = 0, len(items)
        while i < n:
            tail = self._tail
            free = cap - (tail - self._head)
            if free == 0:
                self._wait_for_space()
                continue
            take = min(free, n - i)
            for j in range(take):
                buf[(tail + j) % cap] = items[i + j]
            if self._weigh is not None:
                self._wput += sum(self._weigh(items[i + j])
                                  for j in range(take))
            self._tail = tail + take
            i += take
            if self._get_waiting:
                with self._cond:
                    self._cond.notify()

    # -- consumer side -----------------------------------------------------
    def get(self) -> Any:
        head = self._head
        if self._tail - head == 0:
            self._wait_for_items()
        idx = head % self._cap
        item = self._buf[idx]
        self._buf[idx] = None
        if self._weigh is not None:
            self._wgot += self._weigh(item)
        self._head = head + 1
        if self._put_waiting:
            with self._cond:
                self._cond.notify()
        return item

    def get_many(self, max_n: int, stop: Any = _NO_STOP) -> List[Any]:
        """Multi-pop: at least one item, at most ``max_n``.

        A ``stop`` sentinel is only ever returned alone (``[stop]``) and
        never consumed mid-batch, so callers can treat it as a clean
        end-of-stream boundary.
        """
        head = self._head
        if self._tail - head == 0:
            self._wait_for_items()
        buf, cap = self._buf, self._cap
        avail = self._tail - head
        if avail > max_n:
            avail = max_n
        out: List[Any] = []
        for j in range(avail):
            idx = (head + j) % cap
            item = buf[idx]
            if item is stop:
                if not out:
                    buf[idx] = None
                    out.append(item)
                break
            buf[idx] = None
            out.append(item)
        if self._weigh is not None:
            self._wgot += sum(map(self._weigh, out))
        self._head = head + len(out)
        if self._put_waiting:
            with self._cond:
                self._cond.notify()
        return out


class MpmcChannel:
    """Bounded multi-producer/multi-consumer channel for shared edges.

    One mutex guards a deque; blocking waiters park on two conditions
    sharing that mutex, spinning waiters retry without ever sleeping on
    it.  Batched operations move whole runs of items under a single
    acquire — the per-item synchronization cost the SPSC ring avoids
    structurally is amortized here instead.
    """

    __slots__ = ("_items", "_cap", "_abort", "_blocking", "_lock",
                 "_not_empty", "_not_full", "_weigh", "_witems")

    def __init__(self, capacity: int, abort: AbortSignal,
                 blocking: bool = True, weigh=None):
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        self._items: deque = deque()
        self._cap = capacity
        self._abort = abort
        self._blocking = blocking
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        #: logical-weight hook (columnar edges); the shared-queue weight
        #: total is maintained under the channel's own mutex, so the
        #: multi-producer case needs no extra synchronization
        self._weigh = weigh
        self._witems = 0
        abort.register(self._not_empty)
        abort.register(self._not_full)

    def qsize(self) -> int:
        return len(self._items)

    def qsize_items(self) -> int:
        """Logical items queued (equals :meth:`qsize` without a weigher)."""
        if self._weigh is None:
            return len(self._items)
        return self._witems

    def _weigh_in(self, items) -> None:
        if self._weigh is not None:
            self._witems += sum(map(self._weigh, items))

    def _weigh_out(self, items) -> None:
        if self._weigh is not None:
            self._witems -= sum(map(self._weigh, items))

    def set_blocking(self, blocking: bool) -> bool:
        """Flip the waiting discipline live (see :meth:`SpscChannel.set_blocking`)."""
        with self._lock:
            self._blocking = blocking
            self._not_empty.notify_all()
            self._not_full.notify_all()
        return True

    # -- producer side -----------------------------------------------------
    def put(self, item: Any) -> None:
        if self._blocking:
            with self._lock:
                while len(self._items) >= self._cap:
                    self._abort.check()
                    self._not_full.wait()
                self._items.append(item)
                self._weigh_in((item,))
                self._not_empty.notify()
            return
        spins = 0
        while True:
            with self._lock:
                if len(self._items) < self._cap:
                    self._items.append(item)
                    self._weigh_in((item,))
                    return
            spins += 1
            if spins > _SPIN_FAST:
                self._abort.check()
                os.sched_yield()

    def put_many(self, items: Sequence[Any]) -> None:
        i, n = 0, len(items)
        if self._blocking:
            with self._lock:
                while i < n:
                    while len(self._items) >= self._cap:
                        self._abort.check()
                        self._not_full.wait()
                    take = min(self._cap - len(self._items), n - i)
                    self._items.extend(items[i:i + take])
                    self._weigh_in(items[i:i + take])
                    i += take
                    self._not_empty.notify(take)
            return
        spins = 0
        while i < n:
            with self._lock:
                free = self._cap - len(self._items)
                if free > 0:
                    take = min(free, n - i)
                    self._items.extend(items[i:i + take])
                    self._weigh_in(items[i:i + take])
                    i += take
                    continue
            spins += 1
            if spins > _SPIN_FAST:
                self._abort.check()
                os.sched_yield()

    # -- consumer side -----------------------------------------------------
    def get(self) -> Any:
        if self._blocking:
            with self._lock:
                while not self._items:
                    self._abort.check()
                    self._not_empty.wait()
                item = self._items.popleft()
                self._weigh_out((item,))
                self._not_full.notify()
            return item
        spins = 0
        while True:
            with self._lock:
                if self._items:
                    item = self._items.popleft()
                    self._weigh_out((item,))
                    return item
            spins += 1
            if spins > _SPIN_FAST:
                self._abort.check()
                os.sched_yield()

    def get_many(self, max_n: int, stop: Any = _NO_STOP) -> List[Any]:
        """Multi-pop under one acquire; ``stop`` only ever returned alone.

        On a shared queue the trailing ``stop`` sentinels belong one-per-
        consumer, so a batch never consumes past the first one it meets.
        """
        if self._blocking:
            with self._lock:
                while not self._items:
                    self._abort.check()
                    self._not_empty.wait()
                out = self._drain(max_n, stop)
                self._not_full.notify(len(out))
            return out
        spins = 0
        while True:
            with self._lock:
                if self._items:
                    return self._drain(max_n, stop)
            spins += 1
            if spins > _SPIN_FAST:
                self._abort.check()
                os.sched_yield()

    def _drain(self, max_n: int, stop: Any) -> List[Any]:
        items = self._items
        out: List[Any] = []
        while items and len(out) < max_n:
            if items[0] is stop:
                if not out:
                    out.append(items.popleft())
                break
            out.append(items.popleft())
        self._weigh_out(out)
        return out


class QueueChannel:
    """The pre-channel-layer baseline: ``queue.Queue`` + timeout polling.

    Kept only so benchmarks can quantify what the purpose-built channels
    buy; abort is discovered on a 50 ms poll boundary, exactly like the
    executor this layer replaced.
    """

    _POLL = 0.05

    __slots__ = ("_q", "_abort")

    def __init__(self, capacity: int, abort: AbortSignal,
                 blocking: bool = True, weigh=None):
        self._q: queue.Queue = queue.Queue(maxsize=capacity)
        self._abort = abort

    def qsize(self) -> int:
        return self._q.qsize()

    def qsize_items(self) -> int:
        # the baseline never carries blocks (columnar transport is
        # gated off under the queue backend), so entries == items
        return self._q.qsize()

    def set_blocking(self, blocking: bool) -> bool:
        """The baseline has no spin discipline; the lever does not apply."""
        return False

    def put(self, item: Any) -> None:
        while True:
            try:
                self._q.put(item, timeout=self._POLL)
                return
            except queue.Full:
                self._abort.check()

    def put_many(self, items: Sequence[Any]) -> None:
        for item in items:
            self.put(item)

    def get(self) -> Any:
        while True:
            try:
                return self._q.get(timeout=self._POLL)
            except queue.Empty:
                self._abort.check()

    def get_many(self, max_n: int, stop: Any = _NO_STOP) -> List[Any]:
        return [self.get()]


#: shm slow path: yields before a blocking waiter starts micro-sleeping
_SPIN_YIELD = 4096

#: blocking shm waiter's micro-sleep (seconds); bounds abort latency too
_SHM_NAP = 0.0002


class ShmAbortFlag:
    """One shared byte: the cross-process edition of :class:`AbortSignal`.

    Created by the parent before forking workers; children inherit the
    mapping.  There is no wake-up channel — shm waiters check the flag on
    their slow path (every yield/nap), which bounds abort latency to the
    nap interval instead of a queue-poll timeout.
    """

    __slots__ = ("_shm",)

    def __init__(self) -> None:
        from multiprocessing import shared_memory

        self._shm = shared_memory.SharedMemory(create=True, size=1)
        self._shm.buf[0] = 0

    def set(self) -> None:
        self._shm.buf[0] = 1

    def is_set(self) -> bool:
        return self._shm.buf[0] != 0

    def check(self) -> None:
        if self._shm.buf[0] != 0:
            raise Aborted()

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass


class ShmChannel:
    """Bounded byte-ring over ``multiprocessing.shared_memory``.

    Layout: a 32-byte header — ``tail`` (uint64 at offset 0, total bytes
    ever produced), ``head`` (uint64 at offset 8, total bytes ever
    consumed), and two *item* counters (uint64 at offsets 16/24: total
    envelopes ever produced/consumed, maintained by the same single
    writer as the neighbouring byte counter) — followed by ``capacity``
    ring bytes.  The item counters make queue occupancy observable from
    either side of the process boundary (``qsize_items``), which is what
    the live-metrics gauges and the tracer's occupancy tracks sample.
    Messages are *frames*: a 4-byte little-endian payload length, a
    4-byte item count, then the payload; one frame carries one pickled
    batch of envelopes (the process executor reuses
    ``ExecConfig.batch_size`` to size batches, so the per-frame pickle +
    copy cost is amortized exactly like the in-process multi-push).

    The SPSC discipline matches :class:`SpscChannel`: each side owns one
    counter, and the producer publishes ``tail`` only after the whole
    frame is written, so a consumer that sees *any* unread bytes can
    read the complete frame without a second wait.  Counter loads and
    stores are single aligned 8-byte accesses (atomic on every platform
    CPython runs on).  Shared edges that cross the boundary serialize
    the contended side with an inherited ``multiprocessing.Lock``
    (``producer_lock`` / ``consumer_lock``) instead of a per-item mutex
    protocol in shm.

    Waiting is spin-then-yield, plus a short nap in blocking mode; the
    abort flag is checked on every slow-path iteration.
    """

    _HEADER = 32

    __slots__ = ("_shm", "_buf", "_cap", "_abort", "_blocking",
                 "_plock", "_clock")

    def __init__(self, capacity_bytes: int, abort: Optional[ShmAbortFlag],
                 blocking: bool = True, *, producer_lock: Any = None,
                 consumer_lock: Any = None):
        from multiprocessing import shared_memory

        if capacity_bytes < 64:
            raise ValueError("shm channel capacity must be >= 64 bytes")
        self._shm = shared_memory.SharedMemory(
            create=True, size=self._HEADER + capacity_bytes)
        self._buf = self._shm.buf
        struct.pack_into("<QQQQ", self._buf, 0, 0, 0, 0, 0)
        self._cap = capacity_bytes
        self._abort = abort
        self._blocking = blocking
        self._plock = producer_lock
        self._clock = consumer_lock

    # -- counters ----------------------------------------------------------
    def _load(self, off: int) -> int:
        return struct.unpack_from("<Q", self._buf, off)[0]

    def _store(self, off: int, value: int) -> None:
        struct.pack_into("<Q", self._buf, off, value)

    def qsize_bytes(self) -> int:
        return self._load(0) - self._load(8)

    def qsize_items(self) -> int:
        """Envelopes currently in the ring (produced minus consumed).

        Reads two independently-updated counters without a lock, so the
        value can be transiently off by one in-flight frame — fine for
        occupancy gauges, never used for flow control.
        """
        return max(0, self._load(16) - self._load(24))

    def set_blocking(self, blocking: bool) -> bool:
        """Flip nap-vs-yield on the slow path — for the *calling* process
        only (the flag is a plain attribute, not in the shared header);
        the parent-side controller therefore retunes the ends of the
        boundary edges the parent itself waits on."""
        self._blocking = blocking
        return True

    # -- waiting -----------------------------------------------------------
    def _wait(self, ready) -> None:
        spins = 0
        while not ready():
            spins += 1
            if spins > _SPIN_FAST:
                if self._abort is not None and self._abort.is_set():
                    raise Aborted()
                if self._blocking and spins > _SPIN_YIELD:
                    time.sleep(_SHM_NAP)
                else:
                    os.sched_yield()

    # -- ring copies (byte offsets are ever-increasing; slot = off % cap) --
    def _write(self, pos: int, data: bytes) -> None:
        off = pos % self._cap
        end = off + len(data)
        h = self._HEADER
        if end <= self._cap:
            self._buf[h + off:h + end] = data
        else:
            first = self._cap - off
            self._buf[h + off:h + self._cap] = data[:first]
            self._buf[h:h + end - self._cap] = data[first:]

    def _read(self, pos: int, n: int) -> bytes:
        off = pos % self._cap
        end = off + n
        h = self._HEADER
        if end <= self._cap:
            return bytes(self._buf[h + off:h + end])
        first = self._cap - off
        return (bytes(self._buf[h + off:h + self._cap])
                + bytes(self._buf[h:h + end - self._cap]))

    # -- producer side -----------------------------------------------------
    def put_bytes(self, data: bytes, items: int = 0) -> None:
        """Write one frame; ``items`` is the envelope count it carries
        (0 for control/telemetry frames that should not move gauges)."""
        if self._plock is not None:
            with self._plock:
                self._put_bytes(data, items)
        else:
            self._put_bytes(data, items)

    def _put_bytes(self, data: bytes, items: int) -> None:
        need = 8 + len(data)
        if need > self._cap:
            raise ValueError(
                f"frame of {need} bytes exceeds shm channel capacity "
                f"{self._cap}; raise shm_capacity_bytes or lower batch_size"
            )
        tail = self._load(0)
        self._wait(lambda: tail - self._load(8) + need <= self._cap)
        self._write(tail, len(data).to_bytes(4, "little"))
        self._write(tail + 4, items.to_bytes(4, "little"))
        self._write(tail + 8, data)
        if items:
            self._store(16, self._load(16) + items)
        self._store(0, tail + need)

    def put(self, obj: Any) -> None:
        self.put_bytes(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL),
                       items=1)

    def put_obj(self, obj: Any, items: int = 1) -> None:
        """Write one object as a pickle protocol-5 out-of-band frame.

        Large contiguous buffers (ItemBlock numpy columns) are surfaced
        through ``buffer_callback`` and *gathered* straight into the ring
        — one copy from the array into shm, instead of pickle first
        concatenating everything into an intermediate bytes object and
        the ring copying that.  Frame payload layout::

            u32 nbuf | nbuf x (u32 len, raw bytes) | pickle bytes

        ``nbuf == 0`` (no out-of-band buffers, or a non-contiguous one
        that cannot expose raw bytes) degrades to an ordinary in-band
        pickle, so :meth:`get_obj` reads every frame uniformly.
        """
        bufs: List[Any] = []
        views: List[Any] = []
        try:
            data = pickle.dumps(obj, protocol=5,
                                buffer_callback=bufs.append)
            views = [b.raw() for b in bufs]
        except BufferError:
            views = []
            data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        parts: List[Any] = [len(views).to_bytes(4, "little")]
        for v in views:
            parts.append(len(v).to_bytes(4, "little"))
            parts.append(v)
        parts.append(data)
        if self._plock is not None:
            with self._plock:
                self._put_frame(parts, items)
        else:
            self._put_frame(parts, items)

    def _put_frame(self, parts: Sequence[Any], items: int) -> None:
        """Gather-write one frame from multiple byte parts (no join)."""
        total = 0
        for p in parts:
            total += len(p)
        need = 8 + total
        if need > self._cap:
            raise ValueError(
                f"frame of {need} bytes exceeds shm channel capacity "
                f"{self._cap}; raise shm_capacity_bytes or lower batch_size"
            )
        tail = self._load(0)
        self._wait(lambda: tail - self._load(8) + need <= self._cap)
        self._write(tail, total.to_bytes(4, "little"))
        self._write(tail + 4, items.to_bytes(4, "little"))
        pos = tail + 8
        for p in parts:
            self._write(pos, p)
            pos += len(p)
        if items:
            self._store(16, self._load(16) + items)
        self._store(0, tail + need)

    # -- consumer side -----------------------------------------------------
    def get_bytes(self) -> bytes:
        if self._clock is not None:
            with self._clock:
                return self._get_bytes()
        return self._get_bytes()

    def _get_bytes(self) -> bytes:
        head = self._load(8)
        # The producer publishes tail after the whole frame, so one wait
        # suffices: any unread bytes => a complete frame is present.
        self._wait(lambda: self._load(0) > head)
        n = int.from_bytes(self._read(head, 4), "little")
        items = int.from_bytes(self._read(head + 4, 4), "little")
        data = self._read(head + 8, n)
        if items:
            self._store(24, self._load(24) + items)
        self._store(8, head + 8 + n)
        return data

    def get(self) -> Any:
        return pickle.loads(self.get_bytes())

    def get_obj(self) -> Any:
        """Read one :meth:`put_obj` frame back into an object."""
        if self._clock is not None:
            with self._clock:
                return self._get_obj()
        return self._get_obj()

    def _get_obj(self) -> Any:
        head = self._load(8)
        self._wait(lambda: self._load(0) > head)
        n = int.from_bytes(self._read(head, 4), "little")
        items = int.from_bytes(self._read(head + 4, 4), "little")
        pos = head + 8
        end = pos + n
        nbuf = int.from_bytes(self._read(pos, 4), "little")
        pos += 4
        buffers: List[bytes] = []
        for _ in range(nbuf):
            blen = int.from_bytes(self._read(pos, 4), "little")
            pos += 4
            buffers.append(self._read(pos, blen))
            pos += blen
        data = self._read(pos, end - pos)
        obj = (pickle.loads(data, buffers=buffers) if nbuf
               else pickle.loads(data))
        if items:
            self._store(24, self._load(24) + items)
        self._store(8, end)
        return obj

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self._buf = None
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass


def make_channel(capacity: int, abort: AbortSignal, *, blocking: bool = True,
                 spsc: bool = False, backend: str = "ring", weigh=None):
    """Pick the channel implementation for one queue of an edge.

    ``spsc`` asserts single-producer/single-consumer access (the common
    case after plan lowering); ``backend="queue"`` forces the baseline
    regardless, for benchmarking.  ``weigh`` (columnar edges) maps one
    queued entry to its logical item count for ``qsize_items``.
    """
    if backend not in CHANNEL_BACKENDS:
        raise ValueError(
            f"unknown channel backend {backend!r} (expected one of "
            f"{list(CHANNEL_BACKENDS)})"
        )
    if backend == "queue":
        return QueueChannel(capacity, abort, blocking)
    if spsc:
        return SpscChannel(capacity, abort, blocking, weigh)
    return MpmcChannel(capacity, abort, blocking, weigh)
