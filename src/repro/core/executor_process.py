"""Process-parallel executor: farm replicas on real cores, not one GIL.

Selected by ``ExecConfig(workers="process")``.  The plan is unchanged —
this executor runs the *same* :class:`~repro.core.plan.ExecutionPlan` as
the thread backend, but hosts every process-eligible placement group
(one farm replica's whole worker chain, see
:func:`~repro.core.plan.plan_process_placement`) in its own forked
worker process.  The source, sink, sequencers and pinned stages stay in
the parent, exactly where the thread backend runs them.

Topology:

* **parent-local edges** keep PR 3's in-process rings untouched;
* **group-local edges** (a shipped chain's private hops) are rebuilt as
  ordinary in-process rings *inside* the worker;
* **boundary edges** are lowered onto
  :class:`~repro.core.channel.ShmChannel` byte rings — one SPSC ring per
  consumer for per-consumer fan-out, one shared ring with an inherited
  ``multiprocessing.Lock`` on the contended side otherwise.  Envelopes
  travel as pickled batches sized by ``ExecConfig.batch_size``.

Semantics preserved against the thread backend:

* **units and loops** — workers execute the unmodified
  :class:`~repro.core.executor_native.UnitRunner` loop bodies, so
  ordering, sequence numbering and EOS aggregation are defined once;
* **tokens** — the token pool is parent-side state; worker processes
  never touch it.  Under a token gate shipped units run with
  ``forward_empty`` so filtered items flow back as empty envelopes and
  release their token in the parent;
* **metrics and traces** — each worker accumulates its own
  :class:`StageMetrics` and (when tracing) a child-local
  :class:`~repro.obs.tracer.SpanRecorder` whose clock shares the
  parent's origin (``perf_counter`` is system-wide monotonic); both are
  shipped once at EOS over the result queue and merged, so ``--trace``
  output is backend-invariant; boundary shm edges additionally sample
  queue-occupancy counter events from the ring item counters, so the
  ``q:{name}`` occupancy tracks match the thread backend's;
* **live telemetry** — when metrics are on, each worker runs its own
  :class:`~repro.obs.metrics.MetricsRegistry` and ships cumulative
  counter payloads every sampler interval over a dedicated per-group
  :class:`~repro.core.channel.ShmChannel`; the parent folds them in via
  ``apply_remote`` so ``workers="process"`` publishes the same live
  snapshots as the thread backend;
* **failures** — a :class:`ShmAbortFlag` byte mirrors the parent's
  event-driven error box across the boundary: any side's failure flips
  it, shm waiters poll it on their slow path, and a per-worker watchdog
  thread folds it into the worker's local abort signal.

Stages cross the boundary by pickling: a picklable factory ships as-is
(the worker constructs lazily); an unpicklable factory (a front-end's
closure, typically) is called parent-side in plan order and the
resulting *instance* ships instead.  When neither pickles,
:class:`UnpicklableStageError` names the stage *before* any process is
spawned.  Plans with no eligible group —
or platforms without the ``fork`` start method — fall back to the
thread backend silently.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import threading
import time
from collections import deque
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

from repro.control.controller import Controller
from repro.core.channel import ShmAbortFlag, ShmChannel
from repro.core.config import ExecConfig
from repro.core.executor_native import (
    Edge,
    NativeExecutor,
    PipelineAborted,
    UnitRunner,
    _env_weight,
    _ErrorBox,
    _NativeActuator,
    _TokenPool,
)
from repro.core.graph import PipelineGraph
from repro.core.items import EOS, RETIRE
from repro.core.metrics import RunResult, StageMetrics
from repro.core.plan import (
    ChannelSpec,
    ProcessPlacement,
    StageUnit,
    clone_replica_units,
    plan_process_placement,
)
from repro.core.stage import InstanceFactory, UnpicklableStageError
from repro.obs.clock import WallClock
from repro.obs.metrics import LiveTelemetry, MetricsRegistry
from repro.obs.tracer import SpanRecorder, use_tracer

#: byte capacity of one shared-memory ring (item capacity is then
#: data-dependent; backpressure still bounds memory per edge)
_SHM_RING_BYTES = 1 << 20

#: byte capacity of the per-group telemetry delta channel (payloads are
#: a few KB of pickled cumulative counters; the parent drains eagerly)
_TELE_RING_BYTES = 1 << 16

#: worker watchdog / parent monitor poll period (seconds); bounds how
#: long a cross-process abort takes to reach threads parked in-process
_POLL = 0.02

_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL


class _ProcErrorBox(_ErrorBox):
    """Parent error box that mirrors failures into the shared abort byte.

    A worker's exception only reaches the parent when its report is
    drained at the end of the run, long after the abort flag unwound the
    parent's own threads — so a local error recorded while the flag was
    already set is *consequential* (EOS-starved reorder buffers and the
    like) and is outranked by the worker's root cause
    (:meth:`fail_remote`).
    """

    def __init__(self) -> None:
        super().__init__()
        self.flag: Optional[ShmAbortFlag] = None
        self._provisional = False

    def fail(self, exc: BaseException) -> None:
        with self._err_lock:
            if self.error is None:
                self.error = exc
                self._provisional = (self.flag is not None
                                     and self.flag.is_set())
        self.set()

    def fail_remote(self, exc: BaseException) -> None:
        """Record a worker's own exception; outranks consequential errors."""
        with self._err_lock:
            if self.error is None or self._provisional:
                self.error = exc
                self._provisional = False
        self.set()

    def set(self) -> None:
        if self.flag is not None:
            self.flag.set()
        super().set()


class ShmEdge:
    """Edge-compatible bridge over shared-memory rings.

    Constructed by the parent before forking; both sides use the *same*
    inherited object — per-consumer inbox deques are per-process state,
    counters live in the shm segments, and EOS aggregation across
    producer processes rides a ``multiprocessing.Value``.  One pickled
    frame carries one batch of envelopes, so ``put_many``/``get_many``
    amortize the pickle + copy exactly like the in-process multi-push.
    """

    def __init__(self, spec: ChannelSpec, flag: ShmAbortFlag,
                 blocking: bool, mp_ctx, elastic: bool = False) -> None:
        self.name = spec.name
        #: block-typed edge: envelopes may carry whole ItemBlocks; the
        #: frame item counts then tally logical items so the shm
        #: occupancy gauges stay comparable with the fast path off
        self.columnar = getattr(spec, "columnar", False)
        #: total-ever producer count; a ``Value`` (not a plain int) so a
        #: worker forked before a grow still sees the live count when it
        #: aggregates EOS (``elastic`` edges may gain producers mid-run)
        self._producers = mp_ctx.Value("i", spec.producers)
        self.consumers = spec.consumers
        self._placement = spec.placement
        self._eos_count = mp_ctx.Value("i", 0)
        #: set under the ``_eos_count`` lock by whichever process fans
        #: the EOS out; guards ``add_producer`` across processes
        self._eos_fanned = mp_ctx.Value("i", 0)
        self._flag = flag
        self._blocking = blocking
        #: per-process observability binding (see :meth:`bind_tracer`)
        self._tracer = None
        self._obs_clock = None
        if spec.per_consumer:
            self._shared = False
            self._channels = [
                ShmChannel(_SHM_RING_BYTES, flag, blocking)
                for _ in range(spec.consumers)
            ]
            self._rotation = list(range(spec.consumers))
            self._rr = itertools.cycle(self._rotation)
            self._tracks = [f"q:{spec.name}.{i}" for i in range(spec.consumers)]
        else:
            self._shared = True
            # An elastic shared ring may gain a producer or consumer
            # process mid-run, so it needs both locks even when the
            # static plan says one side is uncontended.
            self._channels = [ShmChannel(
                _SHM_RING_BYTES, flag, blocking,
                producer_lock=mp_ctx.Lock()
                if spec.producers > 1 or elastic else None,
                consumer_lock=mp_ctx.Lock()
                if spec.consumers > 1 or elastic else None,
            )]
            self._rotation = [0]
            self._rr = itertools.cycle(self._rotation)
            self._tracks = [f"q:{spec.name}"]
        # Parent-side elastic state: every structural mutation happens in
        # the parent process (producers of an elastic farm's input edge
        # are always parent threads), so a thread lock suffices; worker
        # forks carry a dead copy they never touch.
        self._retire_lock = threading.Lock()
        self._retired: set = set()
        self._pending_retire: List[int] = []
        #: consumer_idx -> locally buffered envelopes (per-process state)
        self._inboxes: Dict[int, deque] = {}

    @property
    def producers(self) -> int:
        return self._producers.value

    def bind_tracer(self, tracer, clock) -> None:
        """Install this process's tracer for occupancy sampling.

        Tracers are per-process (a forked copy of the parent's recorder
        would swallow events), so each side binds its own after fork:
        the parent right after construction, every worker in
        ``_worker_main``.  The occupancy value itself comes from the shm
        item counters, so both sides sample the same truth and the
        merged ``q:{name}`` tracks are backend-invariant.
        """
        self._tracer = tracer
        self._obs_clock = clock

    def _sample(self, idx: int) -> None:
        self._tracer.counter(self._tracks[idx], "occupancy",
                             self._obs_clock.now(),
                             self._channels[idx].qsize_items())

    def qsize_total(self) -> int:
        """Envelopes in flight across the edge's rings (metrics gauge)."""
        return sum(ch.qsize_items() for ch in self._channels)

    def _route(self, env: Any) -> int:
        if self._placement is not None:
            return self._placement(env.seq, self.consumers) % self.consumers
        return next(self._rr)

    def _items_of(self, envs: Sequence[Any]) -> int:
        if not self.columnar:
            return len(envs)
        return sum(_env_weight(e) for e in envs)

    # producer side ------------------------------------------------------
    # Envelope frames use the protocol-5 out-of-band format
    # (:meth:`ShmChannel.put_obj`): an ItemBlock's numpy columns are
    # gathered straight from the arrays into the ring — one copy —
    # instead of pickle concatenating them into an intermediate blob.
    def put(self, env: Any, consumer_hint: Optional[int] = None) -> None:
        if self._shared:
            idx = 0
        else:
            idx = self._route(env) if consumer_hint is None else consumer_hint
        self._channels[idx].put_obj(
            [env], items=_env_weight(env) if self.columnar else 1)
        if self._tracer is not None:
            self._sample(idx)
        if self._pending_retire:
            with self._retire_lock:
                self._drain_retires()

    def put_many(self, envs: Sequence[Any]) -> None:
        if self._shared or len(self._channels) == 1:
            self._channels[0].put_obj(list(envs), items=self._items_of(envs))
            if self._tracer is not None:
                self._sample(0)
        else:
            buckets: Dict[int, List[Any]] = {}
            for env in envs:
                buckets.setdefault(self._route(env), []).append(env)
            for idx, bucket in buckets.items():
                self._channels[idx].put_obj(bucket,
                                            items=self._items_of(bucket))
                if self._tracer is not None:
                    self._sample(idx)
        if self._pending_retire:
            with self._retire_lock:
                self._drain_retires()

    def put_eos(self) -> None:
        """Last producer (across processes) releases every consumer."""
        with self._eos_count.get_lock():
            self._eos_count.value += 1
            last = self._eos_count.value == self._producers.value
            if last:
                self._eos_fanned.value = 1
        if not last:
            return
        with self._retire_lock:
            self._drain_retires()
            if self._shared:
                for _ in range(self.consumers):
                    self._channels[0].put_obj([EOS], items=1)
            else:
                for i, ch in enumerate(self._channels):
                    if i not in self._retired:
                        ch.put_obj([EOS], items=1)

    # elastic rewiring (parent-side only) --------------------------------
    def set_blocking(self, blocking: bool) -> bool:
        """Retune the wait discipline for the ends the *parent* holds.

        :meth:`ShmChannel.set_blocking` flips a per-process flag, so the
        worker side keeps its configured discipline — the contended end
        the controller observes (the parent's producer or the sink's
        consumer) is the one that moves.
        """
        self._blocking = blocking
        for ch in self._channels:
            ch.set_blocking(blocking)
        return True

    def add_consumer(self) -> Optional[int]:
        """Reserve a consumer slot for a grow; None once EOS fanned out.

        Per-consumer mode creates the new ring *reserved* (skipped by
        the EOS fan-out) so a stream that ends between the fork and
        :meth:`activate_consumer` cannot strand the new worker; shared
        mode just raises the fan-out count — the new process consumes
        from the ring it inherited at fork.
        """
        with self._retire_lock:
            if self._eos_fanned.value:
                return None
            if self._shared:
                self.consumers += 1
                return 0
            idx = len(self._channels)
            self._channels.append(
                ShmChannel(_SHM_RING_BYTES, self._flag, self._blocking))
            self._tracks.append(f"q:{self.name}.{idx}")
            self._retired.add(idx)          # reserved, not yet routable
            self.consumers += 1
            return idx

    def activate_consumer(self, idx: int) -> None:
        """Join a reserved slot to the routing rotation (post-fork)."""
        with self._retire_lock:
            if self._shared:
                return
            if self._eos_fanned.value:
                # stream ended while the worker was forking: hand it the
                # EOS the fan-out skipped so it exits immediately
                self._channels[idx].put_obj([EOS], items=1)
                return
            self._retired.discard(idx)
            self._rotation.append(idx)
            self._rr = itertools.cycle(self._rotation)

    def cancel_consumer(self, idx: int) -> None:
        """Unwind a reservation whose grow failed downstream."""
        with self._retire_lock:
            self.consumers -= 1
            # per-consumer: the reserved ring stays in ``_retired`` and
            # is destroyed with the edge

    def add_producer(self) -> bool:
        """Count one more producer; False once the EOS already fanned."""
        with self._eos_count.get_lock():
            if self._eos_fanned.value:
                return False
            self._producers.value += 1
            return True

    def request_retire(self) -> bool:
        """Queue a RETIRE behind everything already routed to one slot.

        The sentinel frame is written by the *producer* thread at its
        next put (or by the EOS fan-out), never concurrently with it —
        the boundary rings stay single-producer.
        """
        with self._retire_lock:
            if self._eos_fanned.value:
                return False
            if self._shared:
                if self.consumers <= 1:
                    return False
                self.consumers -= 1
                self._pending_retire.append(0)
                return True
            if len(self._rotation) <= 1:
                return False
            idx = self._rotation.pop()
            self._rr = itertools.cycle(self._rotation)
            self._retired.add(idx)
            self.consumers -= 1
            self._pending_retire.append(idx)
            return True

    def _drain_retires(self) -> None:
        # caller holds _retire_lock
        if not self._pending_retire:
            return
        pending, self._pending_retire = self._pending_retire, []
        for idx in pending:
            self._channels[idx].put_obj([RETIRE], items=1)

    # consumer side ------------------------------------------------------
    def _inbox(self, consumer_idx: int) -> deque:
        inbox = self._inboxes.get(consumer_idx)
        if inbox is None:
            inbox = self._inboxes[consumer_idx] = deque()
        return inbox

    def get(self, consumer_idx: int) -> Any:
        idx = 0 if self._shared else consumer_idx
        inbox = self._inbox(consumer_idx)
        if not inbox:
            inbox.extend(self._channels[idx].get_obj())
            if self._tracer is not None:
                self._sample(idx)
        return inbox.popleft()

    def get_many(self, consumer_idx: int, max_n: int) -> List[Any]:
        """Multi-pop mirroring the in-process contract: EOS arrives alone."""
        idx = 0 if self._shared else consumer_idx
        inbox = self._inbox(consumer_idx)
        if not inbox:
            inbox.extend(self._channels[idx].get_obj())
            if self._tracer is not None:
                self._sample(idx)
        out: List[Any] = []
        while inbox and len(out) < max_n:
            if inbox[0] is EOS:
                if not out:
                    out.append(inbox.popleft())
                break
            out.append(inbox.popleft())
        return out

    # lifecycle ----------------------------------------------------------
    def destroy(self) -> None:
        for ch in self._channels:
            ch.close()
            ch.unlink()


def _portable_exc(exc: BaseException) -> BaseException:
    """An exception safe to send over the result queue."""
    try:
        pickle.dumps(exc, _PICKLE_PROTO)
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _worker_main(group: str, units_blob: bytes,
                 local_specs: Dict[str, ChannelSpec],
                 boundary: Dict[str, ShmEdge], cfg: ExecConfig,
                 flag: ShmAbortFlag, result_q, trace: bool,
                 clock_origin: float, tele: Optional[tuple] = None) -> None:
    """Worker-process entry: run one placement group's chain to EOS.

    Everything arrives through fork inheritance except the units
    themselves, which are shipped pickled (so by-name registry factories
    resolve in the worker and shipping is start-method independent).

    ``tele`` is ``(shm_channel, interval, wait_sample)`` when live
    metrics are on: the worker keeps its *own* local
    :class:`~repro.obs.metrics.MetricsRegistry` (the parent's forked
    copy is a dead snapshot) and a shipper thread sends its cumulative
    ``export_state`` payload over the dedicated shm channel every
    interval, plus one final ``eos``-marked payload after the chain
    drains.  Cumulative payloads make the protocol lossless under
    skipped windows: the parent only ever keeps the latest.
    """
    # Flag-connected box: a failure here flips the shared abort byte
    # *before* the failing loop's finally block propagates EOS, so the
    # parent observes the abort ahead of the truncated stream.
    errors = _ProcErrorBox()
    errors.flag = flag
    tracer: Optional[SpanRecorder] = None
    metrics: Dict[str, StageMetrics] = {}
    trace_payload: Any = None
    try:
        units: List[StageUnit] = pickle.loads(units_blob)
        clock = WallClock()
        clock.origin = clock_origin  # share the parent's time axis
        if trace:
            tracer = SpanRecorder()
            tracer.begin_run(group, "native", clock)
        local_reg: Optional[MetricsRegistry] = None
        if tele is not None:
            tele_ch, tele_interval, wait_sample = tele
            local_reg = MetricsRegistry(wait_sample=wait_sample)
        # Tokens are parent-side state: the worker's pool is a no-op.
        runner = UnitRunner(cfg, errors, _TokenPool(None, errors),
                            tracer=tracer, clock=clock,
                            collect_outputs=False, metrics=local_reg)
        edges: Dict[str, Any] = {
            name: Edge(spec, cfg.queue_capacity, errors,
                       blocking=cfg.blocking, backend=cfg.channel_backend,
                       tracer=tracer, clock=clock)
            for name, spec in local_specs.items()
        }
        # Boundary edges carry the parent's forked tracer binding; swap
        # in this process's own (or None) so events land where they are
        # shipped from.
        for shm_edge in boundary.values():
            shm_edge.bind_tracer(tracer, clock)
        edges.update(boundary)
        if local_reg is not None:
            for name in local_specs:
                local_reg.edge_gauge(name, edges[name].qsize_total)

        ship_stop: Optional[threading.Event] = None
        ship_thread: Optional[threading.Thread] = None
        if tele is not None:
            ship_stop = threading.Event()

            def ship(final: bool) -> None:
                payload = local_reg.export_state()
                payload["eos"] = final
                tele_ch.put_bytes(pickle.dumps(payload, _PICKLE_PROTO))

            def shipper() -> None:
                while not ship_stop.wait(tele_interval):
                    try:
                        ship(False)
                    except Exception:
                        return

            ship_thread = threading.Thread(target=shipper,
                                           name="metrics-shipper", daemon=True)
            ship_thread.start()

        stop = threading.Event()

        def watch() -> None:
            # Fold the cross-process abort byte into the local signal so
            # threads parked on in-worker rings wake up too.
            while not stop.is_set():
                if flag.is_set():
                    errors.set()
                    return
                time.sleep(_POLL)

        threading.Thread(target=watch, daemon=True).start()

        threads: List[threading.Thread] = []

        def spawn(unit: StageUnit, logic: Any) -> None:
            def body() -> None:
                try:
                    if tracer is not None:
                        with use_tracer(tracer):
                            runner.stage_loop(unit, logic,
                                              edges[unit.in_channel],
                                              edges[unit.out_channel])
                    else:
                        runner.stage_loop(unit, logic,
                                          edges[unit.in_channel],
                                          edges[unit.out_channel])
                except PipelineAborted:
                    pass
                except BaseException as exc:  # noqa: BLE001 - must capture all
                    errors.fail(exc)

            threads.append(threading.Thread(target=body, name=unit.track,
                                            daemon=True))

        for unit in units:
            spawn(unit, unit.spec.factory())
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        if ship_stop is not None:
            ship_stop.set()
            ship_thread.join(timeout=5.0)
            try:
                ship(True)  # final cumulative payload, eos-marked
            except Exception:
                pass
        metrics = runner.metrics
        if tracer is not None:
            trace_payload = (tracer.spans, tracer.counters, tracer.instants)
    except BaseException as exc:  # noqa: BLE001 - report, never hang the parent
        errors.fail(exc)
    if errors.error is not None:
        flag.set()
        result_q.put(("err", group, _portable_exc(errors.error)))
    else:
        result_q.put(("ok", group, metrics, trace_payload))


class _ProcActuator(_NativeActuator):
    """Control-loop backend for the process executor.

    Same decision surface as the thread actuator, different actuation
    paths: a grow *re-plans* the farm (clone the replica chain, pickle
    it, fork a fresh worker process wired to the existing boundary
    rings) while the parent source is paused, then resumes the stream —
    the issue's drain → re-plan → resume discipline, with the drain
    reduced to the boundary rings' own FIFO order (a RETIRE or a new
    slot activation is strictly ordered behind every frame already
    written, so emptying the rings first is unnecessary).  A shrink
    queues a RETIRE frame exactly like the thread backend; the retiring
    worker's early EOS crosses the boundary through the shared
    ``_eos_count``.

    Only farms whose every replica actually shipped (and whose boundary
    edges are shm rings) are scalable here; blocking/batch retuning
    applies to the parent-held ends of every edge.
    """

    def __init__(self, executor: "ProcessExecutor", edges: Dict[str, Any],
                 shm_edges: Dict[str, "ShmEdge"], runner: UnitRunner,
                 policy) -> None:
        super().__init__(executor, edges, runner, policy)
        placement = executor.placement
        self._groups = {
            name: st for name, st in self._groups.items()
            if (all(f"{name}#{r}" in placement.groups
                    for r in range(st.group.replicas))
                and st.group.in_channel in shm_edges
                and st.group.out_channel in shm_edges)
        }

    # -- internals (called with the lock held) ---------------------------
    def _grow(self, st) -> bool:
        g = st.group
        ex = self._ex
        in_edge = self._edges[g.in_channel]
        out_edge = self._edges[g.out_channel]
        slot = in_edge.add_consumer()
        if slot is None:
            return False  # stream already ending
        if not out_edge.add_producer():
            in_edge.cancel_consumer(slot)
            return False
        r = st.next_r
        st.next_r += 1
        units, hop_specs = clone_replica_units(g, r, st.replicas + 1, slot)
        group = f"{g.name}#{r}"
        self._runner.pause()  # hold new items while the farm is re-planned
        try:
            blob = ex._pickle_new_group(group, units)
            local_specs = {cs.name: cs for cs in hop_specs}
            boundary = {g.in_channel: in_edge, g.out_channel: out_edge}
            ex._fork_replica(group, blob, local_specs, boundary)
        except Exception:
            in_edge.cancel_consumer(slot)
            # the producer count cannot be unwound (a worker may already
            # have aggregated against it): contribute the missing EOS on
            # the failed replica's behalf instead
            out_edge.put_eos()
            raise
        finally:
            self._runner.resume()
        in_edge.activate_consumer(slot)
        st.replicas += 1
        return True

    def _shrink(self, st) -> bool:
        if not self._edges[st.group.in_channel].request_retire():
            return False
        st.replicas -= 1
        return True


class ProcessExecutor(NativeExecutor):
    """Drives a plan with process-eligible groups on worker processes.

    Subclasses the thread executor: the parent side *is* a thread-backend
    run over the parent-resident units, with boundary edges swapped for
    shm bridges.  Plans with nothing to ship (or platforms without
    ``fork``) delegate to the inherited :meth:`NativeExecutor.run`.
    """

    def __init__(self, graph: PipelineGraph, config: ExecConfig):
        super().__init__(graph, config)
        # Re-bind the abort path through the shared flag mirror.
        self._errors = _ProcErrorBox()
        self._tokens = _TokenPool(config.max_tokens, self._errors)
        self.placement: ProcessPlacement = plan_process_placement(self.plan)

    # -- shipping ---------------------------------------------------------
    def _materialize_factories(self) -> Dict[int, Any]:
        """Parent-side instances for shipped units whose factory won't pickle.

        Front-end lowerings (FastFlow worker vectors, TBB filters) build
        stage factories as closures — inherently unpicklable, and for the
        stateful ones (a farm's memoizing worker supply) a pickled copy
        would restart its internal counter in every worker.  So when a
        shipped spec's *factory* does not pickle, call it here in plan
        order — exactly when and where the thread backend would — and
        ship the resulting instance instead (it crosses the boundary via
        :class:`InstanceFactory` whenever the instance itself pickles).
        Factories that do pickle keep constructing lazily in the worker.
        """
        shipped = {id(u) for units in self.placement.groups.values()
                   for u in units}
        factory_ok: Dict[int, bool] = {}
        instances: Dict[int, Any] = {}
        for unit in self.plan.stages:
            if id(unit) not in shipped:
                continue
            spec = unit.spec
            ok = factory_ok.get(id(spec))
            if ok is None:
                try:
                    pickle.dumps(spec.factory, _PICKLE_PROTO)
                    ok = True
                except Exception:
                    ok = False
                factory_ok[id(spec)] = ok
            if not ok:
                instances[id(unit)] = spec.factory()
        return instances

    def _shipped_units(self, units: List[StageUnit],
                       materialized: Dict[int, Any]) -> List[StageUnit]:
        shipped = []
        for u in units:
            spec = u.spec
            if id(u) in materialized:
                spec = replace(spec,
                               factory=InstanceFactory(materialized[id(u)]))
            if spec.placement is not None:
                # The placement hook runs producer-side (in the parent);
                # strip it so an unpicklable hook can't block shipping.
                spec = replace(spec, placement=None)
            # Under a token gate a worker-side filter must not swallow
            # its token (the pool lives in the parent): forward an empty
            # envelope instead, which the parent sink releases.
            forward_empty = u.forward_empty or (
                self.config.max_tokens is not None)
            shipped.append(replace(u, spec=spec,
                                   forward_empty=forward_empty))
        return shipped

    def _pickle_group(self, group: str, units: List[StageUnit],
                      materialized: Dict[int, Any]) -> bytes:
        shipped = self._shipped_units(units, materialized)
        try:
            return pickle.dumps(shipped, _PICKLE_PROTO)
        except Exception as exc:
            for su in shipped:
                try:
                    pickle.dumps(su, _PICKLE_PROTO)
                except Exception as unit_exc:
                    raise UnpicklableStageError(
                        f"stage {su.spec.name!r} cannot be shipped to a "
                        f"worker process under workers='process': {unit_exc}. "
                        "Use a module-level class/function factory, register "
                        "it via repro.core.stage.registered, or pin it to "
                        "the parent with StageSpec(..., pinned=True)."
                    ) from unit_exc
            raise UnpicklableStageError(
                f"placement group {group!r} cannot be shipped to a worker "
                f"process: {exc}"
            ) from exc

    # -- elastic re-planning (controller-driven) --------------------------
    def _pickle_new_group(self, group: str, units: List[StageUnit]) -> bytes:
        """Ship one freshly cloned replica chain (mid-run grow)."""
        materialized: Dict[int, Any] = {}
        for u in units:
            try:
                pickle.dumps(u.spec.factory, _PICKLE_PROTO)
            except Exception:
                materialized[id(u)] = u.spec.factory()
        return self._pickle_group(group, units, materialized)

    def _drain_tele(self, group: str, ch: ShmChannel) -> None:
        """Fold one worker's cumulative telemetry payloads into the
        parent registry as they arrive (thread body, one per worker)."""
        while True:
            try:
                payload = pickle.loads(ch.get_bytes())
            except PipelineAborted:
                return
            self._registry.apply_remote(group, payload)
            if payload.get("eos"):
                return

    def _fork_replica(self, group: str, blob: bytes,
                      local_specs: Dict[str, ChannelSpec],
                      boundary: Dict[str, "ShmEdge"]) -> None:
        """Fork one more worker process for a grown farm replica.

        The new process inherits the *current* boundary edges (including
        any ring reserved for it moments ago) through fork; its results
        and telemetry flow through the same queues as the original
        workers', so the merge loop and drain threads need no special
        case — the procs list just got longer.
        """
        tele = None
        if self._live_telemetry is not None:
            ch = ShmChannel(_TELE_RING_BYTES, self._flag, blocking=True)
            self._tele_chs[group] = ch
            tele = (ch, self._live_telemetry.interval,
                    self._registry.wait_sample)
            dt = threading.Thread(target=self._drain_tele, args=(group, ch),
                                  name=f"metrics-drain-{group}", daemon=True)
            self._drain_threads.append(dt)
            dt.start()
        p = self._mp_ctx.Process(
            target=_worker_main,
            args=(group, blob, local_specs, boundary, self.config,
                  self._flag, self._result_q, self._tracer is not None,
                  self._clock.origin, tele),
            name=f"repro-{group}", daemon=True)
        self._procs.append(p)
        p.start()

    # -- orchestration ----------------------------------------------------
    def run(self) -> RunResult:
        placement = self.placement
        if (not placement.any_eligible
                or "fork" not in multiprocessing.get_all_start_methods()):
            return super().run()

        plan, cfg = self.plan, self.config
        mp_ctx = multiprocessing.get_context("fork")

        # Fail fast on unpicklable stages, before any resource exists.
        materialized = self._materialize_factories()
        blobs = {g: self._pickle_group(g, units, materialized)
                 for g, units in placement.groups.items()}

        tracer = self._tracer
        if tracer is not None:
            self._clock = WallClock()
            tracer.begin_run(plan.graph_name, "native", self._clock)
        telemetry = LiveTelemetry.from_config(cfg, self._clock)
        registry = telemetry.registry if telemetry is not None else None
        runner = self._runner = UnitRunner(cfg, self._errors, self._tokens,
                                           tracer=tracer, clock=self._clock,
                                           metrics=registry)
        runner.sink_columnar = plan.sink_columnar

        flag = ShmAbortFlag()
        self._errors.flag = flag
        result_q = mp_ctx.Queue()
        shm_edges: Dict[str, ShmEdge] = {}
        tele_chs: Dict[str, ShmChannel] = {}
        procs: List[Any] = []
        drain_threads: List[threading.Thread] = []
        telemetry_summary: Optional[Dict[str, Any]] = None
        controller = actuator = None
        # spawn context for controller-driven replica forks
        self._mp_ctx, self._flag, self._result_q = mp_ctx, flag, result_q
        self._procs, self._tele_chs = procs, tele_chs
        self._registry, self._live_telemetry = registry, telemetry
        self._drain_threads = drain_threads
        policy = cfg.resolved_policy()
        # Elastic boundary edges may gain a producer or consumer process
        # mid-run; their shared rings then need both contention locks.
        mutable: set = set()
        if policy is not None:
            for g in plan.elastic.values():
                mutable.add(g.in_channel)
                if g.out_channel is not None:
                    mutable.add(g.out_channel)
        try:
            edges: Dict[str, Any] = {
                name: Edge(plan.channels[name], cfg.queue_capacity,
                           self._errors, blocking=cfg.blocking,
                           backend=cfg.channel_backend, tracer=tracer,
                           clock=self._clock,
                           allow_spsc=name not in mutable)
                for name in placement.parent_channels
            }
            for name in placement.boundary_channels:
                shm_edges[name] = ShmEdge(plan.channels[name], flag,
                                          cfg.blocking, mp_ctx,
                                          elastic=name in mutable)
                shm_edges[name].bind_tracer(tracer, self._clock)
            edges.update(shm_edges)
            if registry is not None:
                # one gauge per edge visible from the parent: in-process
                # rings and shm boundary rings alike (worker-local edges
                # arrive through the shipped payloads)
                for name, edge in edges.items():
                    registry.edge_gauge(name, edge.qsize_total)
                for group in placement.groups:
                    tele_chs[group] = ShmChannel(_TELE_RING_BYTES, flag,
                                                 blocking=True)

            if policy is not None and telemetry is not None:
                actuator = _ProcActuator(self, edges, shm_edges, runner,
                                         policy)
                controller = Controller(policy, actuator,
                                        registry=telemetry.registry,
                                        tracer=tracer)
                telemetry.registry.subscribe(controller.on_snapshot)

            for group, units in placement.groups.items():
                local_specs = {
                    name: plan.channels[name]
                    for name, owner in placement.local_channels.items()
                    if owner == group
                }
                boundary = {u.in_channel: shm_edges[u.in_channel]
                            for u in units if u.in_channel in shm_edges}
                boundary.update(
                    {u.out_channel: shm_edges[u.out_channel]
                     for u in units if u.out_channel in shm_edges})
                tele = None
                if telemetry is not None:
                    tele = (tele_chs[group], telemetry.interval,
                            registry.wait_sample)
                procs.append(mp_ctx.Process(
                    target=_worker_main,
                    args=(group, blobs[group], local_specs, boundary, cfg,
                          flag, result_q, tracer is not None,
                          self._clock.origin, tele),
                    name=f"repro-{group}", daemon=True))

            threads: List[threading.Thread] = []
            self._spawn(threads, runner.source_loop, plan.source.spec,
                        edges[plan.source.out_channel], name="source")
            for squ in plan.sequencers:
                self._spawn(threads, runner.sequencer_loop, squ,
                            edges[squ.in_channel], edges[squ.out_channel],
                            name=squ.track)
            for unit in placement.parent_stages:
                logic = unit.spec.factory()
                out_edge = edges[unit.out_channel] if unit.out_channel else None
                self._spawn(threads, self._stage_loop, unit, logic,
                            edges[unit.in_channel], out_edge, name=unit.track)

            # Monitor: a worker that dies without reporting (kill -9,
            # interpreter crash) must still unwind the whole run.
            stop_monitor = threading.Event()

            def monitor() -> None:
                while not stop_monitor.is_set():
                    if flag.is_set() and not self._errors.is_set():
                        # A worker failed: wake parent threads parked on
                        # in-process channels; the actual exception
                        # arrives over the result queue and is recorded
                        # by the merge loop below.
                        self._errors.set()
                    for p in procs:
                        if p.exitcode is not None and p.exitcode != 0:
                            self._errors.fail(RuntimeError(
                                f"worker process {p.name!r} died with exit "
                                f"code {p.exitcode}"))
                    time.sleep(_POLL)

            # Drain threads: fold each worker's cumulative telemetry
            # payloads into the parent registry as they arrive, so the
            # sampler's next window sees the remote units live.
            if telemetry is not None:
                telemetry.start()
                for group, ch in tele_chs.items():
                    dt = threading.Thread(target=self._drain_tele,
                                          args=(group, ch),
                                          name=f"metrics-drain-{group}",
                                          daemon=True)
                    drain_threads.append(dt)
            t_start = time.perf_counter()
            for p in procs:
                p.start()
            for t in threads:
                t.start()
            for dt in drain_threads:
                dt.start()
            mon = threading.Thread(target=monitor, daemon=True)
            mon.start()
            for t in threads:
                t.join()
            if actuator is not None:
                # the stream is over; refuse further scaling so the
                # procs list below is final
                actuator.close()
            for p in procs:
                p.join(timeout=30.0)
            stop_monitor.set()
            for p in procs:
                if p.is_alive():  # pragma: no cover - stuck worker
                    self._errors.fail(RuntimeError(
                        f"worker process {p.name!r} failed to exit"))
                    p.terminate()
                    p.join()
            makespan = time.perf_counter() - t_start
            # Close telemetry before building the result: drains exit on
            # the workers' eos payloads (or the abort flag); the final
            # sampler tick then folds the last shipped state in.
            for dt in drain_threads:
                dt.join(timeout=5.0)
            if telemetry is not None:
                if controller is not None:
                    telemetry.registry.unsubscribe(controller.on_snapshot)
                telemetry_summary = telemetry.stop()

            # Merge the workers' reports: metrics always, traces when on.
            for _ in range(len(procs)):
                try:
                    msg = result_q.get(timeout=5.0)
                except Exception:  # pragma: no cover - lost report
                    self._errors.fail(RuntimeError(
                        "a worker process exited without reporting"))
                    break
                if msg[0] == "err":
                    self._errors.fail_remote(msg[2])
                    continue
                _tag, _group, worker_metrics, trace_payload = msg
                for m in worker_metrics.values():
                    runner.merge_metrics(m)
                if tracer is not None and trace_payload is not None:
                    spans, counters, instants = trace_payload
                    for s in spans:
                        tracer.span(s.cat, s.track, s.name, s.start, s.end,
                                    s.args)
                    for c in counters:
                        tracer.counter(c.track, c.name, c.t, c.value)
                    for i in instants:
                        tracer.instant(i.track, i.name, i.t, i.args)

            if tracer is not None:
                tracer.end_run(makespan)

            result = self._build_result(runner, makespan)
            result.details["workers"] = "process"
            result.details["process_groups"] = sorted(placement.groups)
            if telemetry_summary is not None:
                result.details["telemetry"] = telemetry_summary
            if controller is not None:
                result.details["controller"] = controller.summary()
            return result
        finally:
            if telemetry is not None and telemetry_summary is None:
                # error path: the normal-path stop above never ran
                if controller is not None:
                    telemetry.registry.unsubscribe(controller.on_snapshot)
                telemetry.stop()
            self._errors.flag = None
            for edge in shm_edges.values():
                edge.destroy()
            for ch in tele_chs.values():
                ch.close()
                ch.unlink()
            result_q.close()
            flag.close()
            flag.unlink()
