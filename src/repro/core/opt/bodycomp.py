"""Body compiler: derive NumPy batch kernels from scalar ``process`` bodies.

PR 8 gave stages batch kernels, but only hand-written ones (a
``process_batch`` method or ``vectorized=fn``).  This module closes the
remaining gap named in the ROADMAP: a stage that opts in with
``vectorized="auto"`` (or runs under the ambient
:func:`~repro.core.opt.vectorize.use_auto_vectorize` default) gets its
ordinary scalar body parsed via :mod:`ast`, lowered to the typed mini-IR
in :mod:`repro.core.opt.kir`, and emitted as a compiled batch kernel —
the same ``kernel(items) -> outputs`` shape the executors already run
through the keyed cache in :mod:`~repro.core.opt.vectorize`.

The accepted subset is deliberately small and *exactly* scalar-
equivalent: arithmetic/comparison/bitwise operators, ``math.*`` calls
mapped to numpy ufuncs, ``abs``/``min``/``max``/``int``/``float``/
``bool``/``round``, attribute reads of item fields, constant-index
subscripts of tuple items, locals, inlined scalar constants (closure,
global, and ``self`` attributes), conditional expressions, and simple
``if``/``else`` statements.  Branches lower to ``np.where`` by
*continuation splitting*: an ``if`` compiles the branch plus the rest of
the block under each arm and merges the two results — early returns,
guard patterns, and branch-local assignments all reduce to one pure
expression tree.  ``a and b`` / ``a or b`` lower to the value-preserving
``np.where(a, b, a)`` / ``np.where(a, a, b)``, so Python's operand-
returning semantics survive vectorization.

Anything else — loops, ``Multi`` fan-out, ``None`` filtering,
exceptions, closures over mutables, ``ctx`` access, factories we cannot
probe — raises :class:`~repro.core.opt.kir.UnsupportedConstruct`, and
the caller falls back *silently and safely* to the scalar path with the
reason slug recorded in the OptReport disposition
(``fallback:<reason>``).  Compilation can therefore never break a run:
the worst case is the behaviour the stage already had.

Compiled kernels are cached by ``(code object, kind, inlined-const
signature)`` so repeated plan builds return the *same* kernel object
(making the vectorize-layer cache hit), and two instances of one stage
class with different scalar attributes get distinct kernels.  Kernels
are dtype-generic — numpy dispatches per batch — and record the first
observed per-column dtype signature on ``CompiledKernel.dtype_signature``
for reports and tests.  Pickling ships a recipe (origin function +
inlined consts), so the process backend recompiles in each worker
instead of shipping code objects.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import math
import textwrap
import threading
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.items import Multi
from repro.core.opt import kir
from repro.core.opt.kir import UnsupportedConstruct
from repro.core.stage import FunctionStage, InstanceFactory, Stage

__all__ = [
    "CompiledKernel",
    "UnsupportedConstruct",
    "bodycomp_stats",
    "clear_body_cache",
    "compile_body",
    "try_compile_spec",
]

#: math-module functions with a drop-in numpy ufunc (name differences
#: mapped); floor/ceil/trunc are handled separately because they return
#: Python ints and need the int64 cast.
_MATH_TO_NP = {
    "sqrt": "sqrt", "cbrt": "cbrt", "exp": "exp", "expm1": "expm1",
    "log": "log", "log2": "log2", "log10": "log10", "log1p": "log1p",
    "sin": "sin", "cos": "cos", "tan": "tan",
    "asin": "arcsin", "acos": "arccos", "atan": "arctan",
    "atan2": "arctan2", "hypot": "hypot",
    "sinh": "sinh", "cosh": "cosh", "tanh": "tanh",
    "asinh": "arcsinh", "acosh": "arccosh", "atanh": "arctanh",
    "fabs": "fabs", "fmod": "fmod", "copysign": "copysign",
    "degrees": "degrees", "radians": "radians", "pow": "power",
    "isnan": "isnan", "isinf": "isinf", "isfinite": "isfinite",
}
_MATH_INT_CASTS = {"floor": "floor_int", "ceil": "ceil_int",
                   "trunc": "trunc_int"}
_MATH_CONSTS = {"pi": math.pi, "e": math.e, "tau": math.tau,
                "inf": math.inf, "nan": math.nan}

_BIN_OPS = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
            ast.FloorDiv: "//", ast.Mod: "%", ast.Pow: "**",
            ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^",
            ast.LShift: "<<", ast.RShift: ">>"}
_UNARY_OPS = {ast.USub: "-", ast.UAdd: "+", ast.Invert: "~"}
_CMP_OPS = {ast.Lt: "<", ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=",
            ast.Eq: "==", ast.NotEq: "!="}

_SCALAR_TYPES = (bool, int, float, complex)


def _u(reason: str) -> UnsupportedConstruct:
    return UnsupportedConstruct(reason)


def _merge_where(cond: kir.Node, a: kir.Node, b: kir.Node) -> kir.Node:
    """Elementwise select, distributing over tuple-shaped results."""
    if isinstance(a, kir.Tup) or isinstance(b, kir.Tup):
        if not (isinstance(a, kir.Tup) and isinstance(b, kir.Tup)
                and len(a.parts) == len(b.parts)):
            raise _u("mixed-return-shape")
        return kir.Tup(tuple(_merge_where(cond, x, y)
                             for x, y in zip(a.parts, b.parts)))
    return kir.Where(cond, a, b)


def _fn_def(fn: Callable) -> ast.AST:
    """The parsed def/lambda for ``fn`` (the parir/prickle idiom)."""
    try:
        src = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(src)
    except (OSError, TypeError, SyntaxError, IndentationError):
        raise _u("no-source") from None
    if fn.__name__ == "<lambda>":
        lambdas = [n for n in ast.walk(tree) if isinstance(n, ast.Lambda)]
        if len(lambdas) != 1:
            # several lambdas share the source line: no safe way to know
            # which one fn is, so never guess
            raise _u("ambiguous-lambda")
        return lambdas[0]
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == fn.__name__:
            if node.decorator_list:
                raise _u("decorated")
            return node
    raise _u("no-source")


class _Compiler:
    """Lowers one scalar body to a :mod:`~repro.core.opt.kir` tree.

    ``kind`` names the parameter shape: ``"process"`` is
    ``(self, item, ctx)``, ``"method"`` is ``(self, item)``,
    ``"function"`` is ``(item,)``.
    """

    def __init__(self, fn: Callable, kind: str, self_obj: Any,
                 preset: Mapping[str, Any]):
        self.fn = fn
        self.kind = kind
        self.self_obj = self_obj
        self.preset = preset
        self.consts: Dict[str, Any] = {}
        self.inputs: Dict[Tuple[str, Any], kir.Input] = {}
        self.self_name: Optional[str] = None
        self.ctx_name: Optional[str] = None
        self.item_name: Optional[str] = None

    # -- entry ---------------------------------------------------------

    def compile(self) -> Tuple[kir.Node, Dict[Tuple[str, Any], kir.Input]]:
        fdef = _fn_def(self.fn)
        args = fdef.args
        if (args.vararg or args.kwarg or args.kwonlyargs or args.defaults
                or args.posonlyargs):
            raise _u("unsupported-signature")
        names = [a.arg for a in args.args]
        expected = {"process": 3, "method": 2, "function": 1}[self.kind]
        if len(names) != expected:
            raise _u("unsupported-signature")
        if self.kind == "process":
            self.self_name, self.item_name, self.ctx_name = names
        elif self.kind == "method":
            self.self_name, self.item_name = names
        else:
            self.item_name = names[0]
        if isinstance(fdef, ast.Lambda):
            result = self._expr(fdef.body, {})
        else:
            result = self._block(list(fdef.body), {})
        return result, self.inputs

    # -- statements ----------------------------------------------------

    def _block(self, stmts, env: Dict[str, kir.Node]) -> kir.Node:
        """Compile a statement suffix down to its result expression.

        ``if`` statements split the continuation: (branch + rest) is
        compiled under each arm and the two results merge elementwise.
        Falling off the end is an implicit ``return None`` — filtering —
        which stays scalar.
        """
        for i, st in enumerate(stmts):
            rest = stmts[i + 1:]
            if isinstance(st, ast.Return):
                if st.value is None or (isinstance(st.value, ast.Constant)
                                        and st.value.value is None):
                    raise _u("none-filtering")
                return self._expr(st.value, env)
            if isinstance(st, ast.If):
                cond = self._expr(st.test, env)
                then = self._block(list(st.body) + rest, dict(env))
                other = self._block(list(st.orelse) + rest, dict(env))
                return _merge_where(cond, then, other)
            if isinstance(st, ast.Assign):
                self._assign(st.targets, st.value, env)
                continue
            if isinstance(st, ast.AnnAssign):
                if st.value is not None and isinstance(st.target, ast.Name):
                    self._bind(st.target.id, self._expr(st.value, env), env)
                continue
            if isinstance(st, ast.AugAssign):
                if not isinstance(st.target, ast.Name):
                    raise _u("unsupported-syntax:AugAssign")
                op = _BIN_OPS.get(type(st.op))
                if op is None:
                    raise _u("unsupported-syntax:AugAssign")
                current = self._expr(ast.Name(id=st.target.id,
                                              ctx=ast.Load()), env)
                self._bind(st.target.id,
                           kir.Bin(op, current, self._expr(st.value, env)),
                           env)
                continue
            if isinstance(st, (ast.For, ast.AsyncFor, ast.While)):
                raise _u("loop")
            if isinstance(st, (ast.Try, ast.Raise, ast.Assert)):
                raise _u("exception-handling")
            if isinstance(st, ast.Expr):
                if isinstance(st.value, ast.Constant) and isinstance(
                        st.value.value, str):
                    continue  # docstring
                raise _u("expression-statement")
            if isinstance(st, ast.Pass):
                continue
            raise _u(f"unsupported-syntax:{type(st).__name__}")
        raise _u("none-filtering")  # implicit return None

    def _assign(self, targets, value, env) -> None:
        if len(targets) != 1:
            raise _u("unsupported-syntax:Assign")
        target = targets[0]
        if isinstance(target, ast.Name):
            self._bind(target.id, self._expr(value, env), env)
            return
        if isinstance(target, ast.Tuple) and all(
                isinstance(t, ast.Name) for t in target.elts):
            val = self._expr(value, env)
            if not (isinstance(val, kir.Tup)
                    and len(val.parts) == len(target.elts)):
                raise _u("unsupported-syntax:Assign")
            for t, part in zip(target.elts, val.parts):
                self._bind(t.id, part, env)
            return
        raise _u(f"unsupported-syntax:{type(target).__name__}")

    def _bind(self, name: str, value: kir.Node, env) -> None:
        if name in (self.item_name, self.self_name, self.ctx_name):
            raise _u("unsupported-syntax:rebind-param")
        env[name] = value

    # -- expressions ---------------------------------------------------

    def _input(self, kind: str, ref: Any) -> kir.Input:
        key = (kind, ref)
        node = self.inputs.get(key)
        if node is None:
            node = kir.Input(kind, ref)
            self.inputs[key] = node
        return node

    def _expr(self, node: ast.AST, env) -> kir.Node:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, _SCALAR_TYPES):
                return kir.Const(node.value)
            raise _u("none-filtering" if node.value is None
                     else "unsupported-constant")
        if isinstance(node, ast.Name):
            return self._name(node.id, env)
        if isinstance(node, ast.Attribute):
            return self._attribute(node, env)
        if isinstance(node, ast.Subscript):
            return self._subscript(node, env)
        if isinstance(node, ast.BinOp):
            op = _BIN_OPS.get(type(node.op))
            if op is None:
                raise _u(f"unsupported-syntax:{type(node.op).__name__}")
            return kir.Bin(op, self._expr(node.left, env),
                           self._expr(node.right, env))
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return kir.Not(self._expr(node.operand, env))
            op = _UNARY_OPS.get(type(node.op))
            if op is None:
                raise _u(f"unsupported-syntax:{type(node.op).__name__}")
            return kir.Un(op, self._expr(node.operand, env))
        if isinstance(node, ast.Compare):
            return self._compare(node, env)
        if isinstance(node, ast.BoolOp):
            # value-preserving lowering keeps Python's operand-returning
            # semantics: a and b == (b if a else a), a or b == (a if a else b)
            parts = [self._expr(v, env) for v in node.values]
            acc = parts[0]
            for part in parts[1:]:
                if isinstance(node.op, ast.And):
                    acc = _merge_where(acc, part, acc)
                else:
                    acc = _merge_where(acc, acc, part)
            return acc
        if isinstance(node, ast.IfExp):
            return _merge_where(self._expr(node.test, env),
                                self._expr(node.body, env),
                                self._expr(node.orelse, env))
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.Tuple):
            return kir.Tup(tuple(self._expr(e, env) for e in node.elts))
        if isinstance(node, ast.NamedExpr):
            val = self._expr(node.value, env)
            if isinstance(node.target, ast.Name):
                self._bind(node.target.id, val, env)
            return val
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            raise _u("loop")
        raise _u(f"unsupported-syntax:{type(node).__name__}")

    def _compare(self, node: ast.Compare, env) -> kir.Node:
        left = self._expr(node.left, env)
        acc: Optional[kir.Node] = None
        for op, comp in zip(node.ops, node.comparators):
            sym = _CMP_OPS.get(type(op))
            if sym is None:
                raise _u(f"unsupported-syntax:{type(op).__name__}")
            right = self._expr(comp, env)
            pair = kir.Cmp(sym, left, right)
            acc = pair if acc is None else _merge_where(acc, pair, acc)
            left = right
        return acc

    def _name(self, name: str, env) -> kir.Node:
        if name == self.ctx_name:
            raise _u("uses-context")
        if name == self.item_name:
            return self._input("item", None)
        if name == self.self_name:
            raise _u("self-attribute")
        if name in env:
            return env[name]
        value, origin = self._lookup(name)
        if isinstance(value, _SCALAR_TYPES):
            self.consts[name] = value
            return kir.Const(value)
        raise _u("closure-over-mutable" if origin == "closure"
                 else f"global-not-constant:{name}")

    def _lookup(self, name: str) -> Tuple[Any, str]:
        """Resolve a free name the way the scalar body would at run time."""
        if name in self.preset:
            return self.preset[name], "preset"
        code = self.fn.__code__
        if name in code.co_freevars and self.fn.__closure__ is not None:
            cell = self.fn.__closure__[code.co_freevars.index(name)]
            try:
                return cell.cell_contents, "closure"
            except ValueError:
                raise _u("closure-over-mutable") from None
        if name in self.fn.__globals__:
            return self.fn.__globals__[name], "global"
        if hasattr(builtins, name):
            return getattr(builtins, name), "builtin"
        raise _u(f"unbound-name:{name}")

    def _attribute(self, node: ast.Attribute, env) -> kir.Node:
        if isinstance(node.value, ast.Name):
            base = node.value.id
            if base == self.item_name:
                return self._input("field", node.attr)
            if base == self.self_name:
                return self._self_const(node.attr)
            if base == self.ctx_name:
                raise _u("uses-context")
            if base not in env:
                value, _ = self._lookup(base)
                if value is math:
                    const = _MATH_CONSTS.get(node.attr)
                    if const is None:
                        raise _u(f"unsupported-call:math.{node.attr}")
                    return kir.Const(const)
        raise _u("unsupported-attribute")

    def _self_const(self, attr: str) -> kir.Node:
        key = f"self.{attr}"
        if key in self.preset:
            value = self.preset[key]
        elif self.self_obj is None:
            raise _u(f"self-attribute:{attr}")
        else:
            try:
                value = getattr(self.self_obj, attr)
            except AttributeError:
                raise _u(f"self-attribute:{attr}") from None
        if not isinstance(value, _SCALAR_TYPES):
            raise _u(f"self-attribute:{attr}")
        self.consts[key] = value
        return kir.Const(value)

    def _subscript(self, node: ast.Subscript, env) -> kir.Node:
        idx = node.slice
        if not (isinstance(idx, ast.Constant) and isinstance(idx.value, int)
                and not isinstance(idx.value, bool)):
            raise _u("subscript")
        if isinstance(node.value, ast.Name) and node.value.id == self.item_name:
            return self._input("index", idx.value)
        base = self._expr(node.value, env)
        if isinstance(base, kir.Tup):
            try:
                return base.parts[idx.value]
            except IndexError:
                raise _u("subscript") from None
        raise _u("subscript")

    def _call(self, node: ast.Call, env) -> kir.Node:
        if node.keywords:
            raise _u("unsupported-call:keywords")
        if any(isinstance(a, ast.Starred) for a in node.args):
            raise _u("unsupported-call:starred")
        func = node.func
        # fan-out is identified before the arguments are lowered — the
        # payload is usually a list literal, which is itself unsupported
        # and would otherwise mask the real reason
        if isinstance(func, ast.Attribute) and func.attr == "Multi":
            raise _u("multi-emission")
        if (isinstance(func, ast.Name) and func.id not in env
                and func.id not in (self.item_name, self.self_name,
                                    self.ctx_name)
                and self._lookup(func.id)[0] is Multi):
            raise _u("multi-emission")
        args = tuple(self._expr(a, env) for a in node.args)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            if base not in env and base not in (self.item_name,
                                                self.self_name,
                                                self.ctx_name):
                value, _ = self._lookup(base)
                if value is math:
                    return self._math_call(func.attr, args)
            if func.attr == "Multi":
                raise _u("multi-emission")
            raise _u(f"unsupported-call:{func.attr}")
        if not isinstance(func, ast.Name):
            raise _u("unsupported-call")
        name = func.id
        if name in env or name in (self.item_name, self.self_name,
                                   self.ctx_name):
            raise _u(f"unsupported-call:{name}")
        value, _ = self._lookup(name)
        if value is Multi:
            raise _u("multi-emission")
        if value is abs and len(args) == 1:
            return kir.Call("abs", args)
        if value in (min, max) and len(args) >= 2:
            key = "min2" if value is min else "max2"
            acc = args[0]
            for arg in args[1:]:
                acc = kir.Call(key, (acc, arg))
            return acc
        if value is int and len(args) == 1:
            return kir.Call("int", args)
        if value is float and len(args) == 1:
            return kir.Call("float", args)
        if value is bool and len(args) == 1:
            return kir.Call("bool", args)
        if value is round:
            if len(args) == 1:
                return kir.Call("round_int", args)
            if len(args) == 2 and isinstance(args[1], kir.Const):
                return kir.Call("round_n", args)
            raise _u("unsupported-call:round")
        mod_name = getattr(value, "__name__", "")
        if callable(value) and getattr(math, mod_name, None) is value:
            return self._math_call(mod_name, args)
        raise _u(f"unsupported-call:{name}")

    def _math_call(self, name: str, args: Tuple[kir.Node, ...]) -> kir.Node:
        if name in _MATH_INT_CASTS and len(args) == 1:
            return kir.Call(_MATH_INT_CASTS[name], args)
        np_name = _MATH_TO_NP.get(name)
        if np_name is None:
            raise _u(f"unsupported-call:math.{name}")
        return kir.Call(f"np:{np_name}", args)


# -- compiled kernels and the body cache ------------------------------


class CompiledKernel:
    """A derived batch kernel: call with ``(items,)``, strict 1:1 map.

    Rides the existing callable-``vectorized`` path through
    :func:`~repro.core.opt.vectorize.get_kernel`; the vectorize-layer
    cache keys on this object, and the body cache below guarantees the
    same (code, consts) always yields the same object, so repeated plan
    builds hit instead of recompiling.
    """

    def __init__(self, fn: Callable, sig_fn: Callable, source: str,
                 origin: Callable, kind: str, consts: Dict[str, Any],
                 cols_fn: Optional[Callable] = None,
                 extract_fn: Optional[Callable] = None,
                 input_kinds: Tuple[Tuple[str, Any], ...] = (),
                 out_parts: Optional[int] = None):
        self._fn = fn
        self._sig_fn = sig_fn
        self.source = source
        self.origin = origin
        self.kind = kind
        self.consts = consts
        # column-level entry points (block-native transport)
        self._cols_fn = cols_fn
        self._extract_fn = extract_fn
        #: (kind, ref) of each input column, in extraction order
        self.input_kinds = input_kinds
        #: result tuple width, or None for a scalar result
        self.out_parts = out_parts
        #: per-column numpy dtype names of the first batch seen
        self.dtype_signature: Optional[Tuple[str, ...]] = None

    def __call__(self, items):
        if self.dtype_signature is None and items:
            self.dtype_signature = self._sig_fn(items)
        return self._fn(items)

    # -- block-native path (columnar transport) -----------------------

    def map_columns(self, block) -> Optional[Tuple[Any, ...]]:
        """Map an ItemBlock's columns onto this kernel's input columns.

        Returns ``None`` when the block layout cannot feed the kernel
        directly (field access, whole-item use of a tuple block, ...);
        the caller then falls back to materializing the items.
        """
        cols = []
        for kind, ref in self.input_kinds:
            if kind == "item" and block.layout == "scalar":
                cols.append(block.columns[0])
            elif (kind == "index" and block.layout == "tuple"
                  and type(ref) is int and 0 <= ref < len(block.columns)):
                cols.append(block.columns[ref])
            else:
                return None
        return tuple(cols)

    def _record_sig(self, cols) -> None:
        if self.dtype_signature is None:
            self.dtype_signature = tuple(
                np.asarray(c).dtype.name for c in cols)

    def _out_block(self, out_cols, count: int, seq_start: int, key):
        from repro.core.items import ItemBlock

        layout = "scalar" if self.out_parts is None else "tuple"
        return ItemBlock(out_cols, count, seq_start, layout, key=key)

    def call_block(self, block):
        """ItemBlock in, ItemBlock out — no per-item materialization.

        Returns ``None`` if the block's columns don't map onto the
        kernel inputs; outputs then take the item-level path instead.
        """
        if self._cols_fn is None:
            return None
        cols = self.map_columns(block)
        if cols is None:
            return None
        self._record_sig(cols)
        out = self._cols_fn(cols, block.count)
        return self._out_block(out, block.count, block.seq_start, block.key)

    def call_items_block(self, items, seq_start: int = 0):
        """Scalar items in, ItemBlock out (the scalar→block shim).

        Extraction reuses the rendered column expressions, so numerics
        and dtypes match the item-level kernel exactly.
        """
        if self._cols_fn is None or not items:
            return None
        try:
            cols = self._extract_fn(items)
        except Exception:
            return None
        self._record_sig(cols)
        out = self._cols_fn(cols, len(items))
        return self._out_block(out, len(items), seq_start, None)

    def __repr__(self) -> str:
        return (f"<CompiledKernel {self.origin.__qualname__} "
                f"consts={self.consts!r}>")

    def __reduce__(self):
        # ship the recipe, not the code: workers recompile (and cache)
        return (_recompile, (self.origin, self.kind,
                             tuple(sorted(self.consts.items()))))


_LOCK = threading.Lock()
_BODY_CACHE: Dict[Any, CompiledKernel] = {}
_STATS = {"compiled": 0, "fallbacks": 0}


def bodycomp_stats() -> Dict[str, int]:
    """Process-wide compiler counters (distinct kernels, fallbacks)."""
    with _LOCK:
        return dict(_STATS)


def clear_body_cache() -> None:
    """Test hook: drop compiled bodies and zero the counters."""
    with _LOCK:
        _BODY_CACHE.clear()
        _STATS["compiled"] = 0
        _STATS["fallbacks"] = 0


def compile_body(fn: Callable, *, kind: str, self_obj: Any = None,
                 preset: Optional[Mapping[str, Any]] = None,
                 ) -> CompiledKernel:
    """Compile one scalar body; raises UnsupportedConstruct on fallback."""
    compiler = _Compiler(fn, kind, self_obj, preset or {})
    result, inputs = compiler.compile()
    key = (fn.__code__, kind,
           tuple(sorted((k, repr(v)) for k, v in compiler.consts.items())))
    with _LOCK:
        cached = _BODY_CACHE.get(key)
        if cached is not None:
            return cached
        source = kir.render_kernel(result, inputs)
        namespace: Dict[str, Any] = {"_np": np}
        exec(source, namespace)  # noqa: S102 - compiler back end
        out_parts = (len(result.parts) if isinstance(result, kir.Tup)
                     else None)
        kernel = CompiledKernel(namespace["_kernel"], namespace["_sig"],
                                source, fn, kind, dict(compiler.consts),
                                cols_fn=namespace["_kernel_cols"],
                                extract_fn=namespace["_extract"],
                                input_kinds=tuple(inputs.keys()),
                                out_parts=out_parts)
        _BODY_CACHE[key] = kernel
        _STATS["compiled"] += 1
        return kernel


def _recompile(origin: Callable, kind: str,
               const_items: Tuple[Tuple[str, Any], ...]) -> CompiledKernel:
    return compile_body(origin, kind=kind, preset=dict(const_items))


def try_compile_spec(spec) -> Tuple[Optional[CompiledKernel], Optional[str]]:
    """Resolve and compile a spec's scalar body, or (None, reason).

    Never raises: every unsupported construct, opaque factory, or parse
    failure comes back as a named fallback reason — the stage simply
    stays on the scalar path it already had.
    """
    factory = spec.factory
    try:
        if isinstance(factory, InstanceFactory):
            inst = factory.instance
            if isinstance(inst, FunctionStage):
                if inst.wants_ctx:
                    raise _u("uses-context")
                fn = inst.fn
                if inspect.ismethod(fn):
                    return compile_body(fn.__func__, kind="method",
                                        self_obj=fn.__self__), None
                return compile_body(fn, kind="function"), None
            return compile_body(type(inst).process, kind="process",
                                self_obj=inst), None
        if isinstance(factory, type) and issubclass(factory, Stage):
            # class factory: scalar attrs must live on the class itself
            return compile_body(factory.process, kind="process",
                                self_obj=factory), None
        raise _u("opaque-factory")
    except UnsupportedConstruct as exc:
        with _LOCK:
            _STATS["fallbacks"] += 1
        return None, exc.reason
