"""The fused-stage runtime unit.

Fusion replaces a chain of serial :class:`~repro.core.graph.StageSpec`\\ s
with one spec whose factory builds a :class:`FusedStage`: the original
stage instances, run back to back inside a single loop iteration with no
channel hop in between.  Executors special-case ``FusedStage`` so that
each constituent keeps its own metric name, trace track, and context —
the fusion is an execution detail, invisible to observability.

``FusedStage`` is still a well-formed :class:`~repro.core.stage.Stage`;
the fallback ``process``/``on_start``/``on_end`` below compose the parts
correctly (without per-part accounting) so any code path that treats it
as a plain stage keeps working.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence

from repro.core.items import Multi
from repro.core.stage import Stage


def _normalize(result: Any) -> tuple:
    """Stage return value -> tuple of payloads (None filters, Multi expands)."""
    if result is None:
        return ()
    if isinstance(result, Multi):
        return tuple(result.items)
    return (result,)


class FusedStage(Stage):
    """A chain of stage instances executed as one unit."""

    __slots__ = ("parts", "names")

    def __init__(self, parts: Sequence[Stage], names: Sequence[str]):
        if len(parts) != len(names):
            raise ValueError("parts and names must align")
        if len(parts) < 2:
            raise ValueError("a FusedStage needs at least two parts")
        self.parts: List[Stage] = list(parts)
        self.names: List[str] = list(names)

    # -- plain-Stage fallback (executors bypass these) ------------------
    def on_start(self, ctx) -> None:
        for part in self.parts:
            part.on_start(ctx)

    def process(self, item: Any, ctx) -> Any:
        payloads: Sequence[Any] = (item,)
        for part in self.parts:
            outs: List[Any] = []
            for p in payloads:
                outs.extend(_normalize(part.process(p, ctx)))
            payloads = outs
            if not payloads:
                return None
        return Multi(list(payloads)) if len(payloads) != 1 else payloads[0]

    def on_end(self, ctx) -> Any:
        finals: List[Any] = []
        for i, part in enumerate(self.parts):
            payloads = _normalize(part.on_end(ctx))
            for rest in self.parts[i + 1:]:
                outs: List[Any] = []
                for p in payloads:
                    outs.extend(_normalize(rest.process(p, ctx)))
                payloads = tuple(outs)
                if not payloads:
                    break
            finals.extend(payloads)
        return Multi(finals) if finals else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FusedStage({'+'.join(self.names)})"


class FusedFactory:
    """Picklable factory composing the fused chain's sub-factories.

    Ships across a process boundary whenever every sub-factory does; when
    one does not, the regular unpicklable-factory fallback in the process
    backend (materialize parent-side, wrap in ``InstanceFactory``) applies
    to the whole fused unit.
    """

    __slots__ = ("factories", "names")

    def __init__(self, factories: Sequence[Callable[[], Any]],
                 names: Sequence[str]):
        self.factories = tuple(factories)
        self.names = tuple(names)

    def __call__(self) -> FusedStage:
        return FusedStage([f() for f in self.factories], self.names)

    def __reduce__(self):
        return (FusedFactory, (self.factories, self.names))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FusedFactory({'+'.join(self.names)})"
