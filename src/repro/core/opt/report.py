"""What the optimizer did to a graph, in numbers.

An :class:`OptReport` is produced by every :func:`repro.core.opt.optimize`
invocation and travels on the plan (``ExecutionPlan.opt``) so executors can
surface it in ``RunResult.details["opt"]``.  It is deliberately flat and
JSON-friendly: the harness aggregates several of them into one ``[opt]``
summary line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class OptReport:
    """Summary of one optimizer run over a flattened graph."""

    passes: List[str] = field(default_factory=list)
    stages_fused: int = 0
    channels_deleted: int = 0
    kernels_compiled: int = 0
    #: one entry per fusion group: {"into", "stages", "replicas"}
    fused: List[Dict[str, Any]] = field(default_factory=list)
    #: names of stages lowered to batch kernels
    vectorized: List[str] = field(default_factory=list)
    #: body-compiler disposition per ``"auto"`` stage:
    #: ``"compiled"`` or ``"fallback:<reason>"``
    bodycomp: Dict[str, str] = field(default_factory=dict)
    #: block-transport disposition per plan edge (filled by
    #: :func:`repro.core.plan.build_plan`, which owns edge typing):
    #: ``"columnar"``, plain ``"scalar"`` (endpoints not block-capable),
    #: or a named fallback reason (``"disabled"``, ``"token-gate"``,
    #: ``"queue-backend"``, ``"elastic"``, ``"placement"``)
    columnar: Dict[str, str] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        return bool(self.stages_fused or self.vectorized)

    def compiled_stages(self) -> List[str]:
        return sorted(n for n, d in self.bodycomp.items()
                      if d == "compiled")

    def columnar_edges(self) -> List[str]:
        return sorted(n for n, d in self.columnar.items()
                      if d == "columnar")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "passes": list(self.passes),
            "stages_fused": self.stages_fused,
            "channels_deleted": self.channels_deleted,
            "kernels_compiled": self.kernels_compiled,
            "fused": [dict(g) for g in self.fused],
            "vectorized": list(self.vectorized),
            "bodycomp": dict(self.bodycomp),
            "columnar": dict(self.columnar),
        }
