"""Stage-fusion pass: collapse chains of cheap serial stages.

Operates on the *flattened* element list (``StageSpec | Farm`` items,
exactly what :meth:`PipelineGraph.flattened` yields) so legality is
purely local:

* only serial specs fuse — ``replicas > 1`` or an elastic bound
  (``max_replicas > 1``) disqualifies a spec, so fusion can never cross
  an :class:`~repro.core.plan.ElasticGroup` boundary;
* a farm is never merged with its neighbours, but the serial chain
  *inside* a farm-of-pipelines worker fuses replica-locally (the farm's
  own replication, ordering and elasticity are untouched);
* eligibility is opt-in: ``fusible=True``, or a declared per-item
  ``cost`` at or under :data:`FUSE_COST_THRESHOLD`.  Stages without
  hints are conservatively left alone, and ``no_fuse=True`` /
  ``fusible=False`` always win.

The fused spec keeps the *head* stage's name so channel, sequencer and
hop naming downstream of the plan is unchanged; the full original chain
rides along in ``fused_from`` for metric/trace identity.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence, Union

from repro.core.graph import Farm, Pipe, StageSpec, _worker_chain
from repro.core.opt.fused import FusedFactory
from repro.core.opt.report import OptReport

#: per-item cost (seconds) at or under which an unhinted-but-costed
#: stage is considered lightweight enough to fuse
FUSE_COST_THRESHOLD = 100e-6

Element = Union[StageSpec, Farm]


def _serial(spec: StageSpec) -> bool:
    """True when the spec can never be replicated, now or elastically."""
    if spec.replicas > 1:
        return False
    return not (spec.max_replicas is not None and spec.max_replicas > 1)


def fuse_eligible(spec: StageSpec) -> bool:
    """Fusion legality for one spec (serial-ness checked separately)."""
    if spec.no_fuse or spec.fusible is False:
        return False
    if spec.fused_from:
        return False  # already a fusion product
    from repro.core.opt.vectorize import resolve_vectorized

    if resolve_vectorized(spec):  # batch kernels keep their own unit
        return False
    if spec.fusible:
        return True
    return spec.cost is not None and spec.cost <= FUSE_COST_THRESHOLD


def _fuse_run(run: Sequence[StageSpec]) -> StageSpec:
    """Build the single spec replacing a fusible run of >= 2 specs."""
    head = run[0]
    cost = None
    if all(s.cost is not None for s in run):
        cost = sum(s.cost for s in run)
    return replace(
        head,
        factory=FusedFactory([s.factory for s in run],
                             [s.name for s in run]),
        pinned=any(s.pinned for s in run),
        min_replicas=None,
        max_replicas=None,
        cost=cost,
        fusible=False,  # a fused unit never re-fuses
        vectorized=None,
        fused_from=tuple(run),
    )


def _fuse_chain(chain: Sequence[StageSpec]) -> List[StageSpec]:
    """Collapse maximal eligible runs within a serial chain."""
    out: List[StageSpec] = []
    run: List[StageSpec] = []

    def flush() -> None:
        if len(run) >= 2:
            out.append(_fuse_run(run))
        else:
            out.extend(run)
        run.clear()

    for spec in chain:
        if _serial(spec) and fuse_eligible(spec):
            run.append(spec)
        else:
            flush()
            out.append(spec)
    flush()
    return out


def fuse_stages(elements: Sequence[Element],
                report: OptReport) -> List[Element]:
    """Run the fusion pass; records what happened in ``report``."""
    report.passes.append("fusion")
    out: List[Element] = []
    i = 0
    while i < len(elements):
        el = elements[i]
        if isinstance(el, Farm):
            out.append(_fuse_farm(el, report))
            i += 1
            continue
        # gather the maximal run of top-level serial StageSpecs
        j = i
        while j < len(elements) and isinstance(elements[j], StageSpec):
            j += 1
        fused = _fuse_chain(elements[i:j])
        for spec in fused:
            if spec.fused_from:
                k = len(spec.fused_from)
                report.stages_fused += k
                report.channels_deleted += k - 1
                report.fused.append({
                    "into": spec.name,
                    "stages": [s.name for s in spec.fused_from],
                    "replicas": 1,
                })
        out.extend(fused)
        i = j
    return out


def _fuse_farm(farm: Farm, report: OptReport) -> Farm:
    """Fuse the serial chain inside a farm-of-pipelines worker."""
    chain = _worker_chain(farm)
    if len(chain) < 2:
        return farm
    fused = _fuse_chain(chain)
    if len(fused) == len(chain):
        return farm
    for spec in fused:
        if spec.fused_from:
            k = len(spec.fused_from)
            report.stages_fused += k
            # one private hop per deleted boundary, in every replica
            report.channels_deleted += (k - 1) * farm.replicas
            report.fused.append({
                "into": spec.name,
                "stages": [s.name for s in spec.fused_from],
                "replicas": farm.replicas,
            })
    worker: Union[StageSpec, Pipe]
    if len(fused) == 1:
        worker = fused[0]
    else:
        name = farm.worker.name if isinstance(farm.worker, Pipe) else farm.name
        worker = Pipe(fused, name=name)
    return Farm(worker=worker, replicas=farm.replicas, ordered=farm.ordered,
                scheduling=farm.scheduling, placement=farm.placement,
                name=farm.name, min_replicas=farm.min_replicas,
                max_replicas=farm.max_replicas)
