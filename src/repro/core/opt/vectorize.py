"""Batch-vectorization pass: lower flagged stages to batch kernels.

A vectorized stage consumes a whole ``get_many`` batch per call instead
of item-at-a-time, which turns ``ExecConfig.batch_size`` from a hand-off
amortizer into a real compute-granularity knob (the numpy/GPU-shaped
input the simulated accelerator path wants).

Kernels are compiled once through a keyed cache — the key is the user's
kernel callable, or the stage class for ``process_batch`` stages — so a
controller flipping ``batch_size`` mid-run only changes how many items
each call receives; it re-triggers cache *lookups*, never recompiles.

The batch contract is strict 1:1 map: ``kernel(items) -> outputs`` with
``len(outputs) == len(items)``.  Filtering (``None``) and fan-out
(``Multi``) stay on the item-at-a-time path; executors enforce the
contract at runtime.

``vectorized="auto"`` asks the body compiler
(:mod:`repro.core.opt.bodycomp`) to *derive* the kernel from the stage's
scalar ``process`` body; :func:`use_auto_vectorize` makes that the
ambient default for unhinted stages.  Either way an unsupported body
falls back silently to the scalar path, with the reason recorded in the
report's per-stage ``bodycomp`` disposition.
"""

from __future__ import annotations

import contextlib
import threading
from contextvars import ContextVar
from dataclasses import replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.core.graph import Farm, GraphError, Pipe, StageSpec, _worker_chain
from repro.core.opt.fusion import FUSE_COST_THRESHOLD
from repro.core.opt.report import OptReport
from repro.core.stage import InstanceFactory, Stage

Element = Union[StageSpec, Farm]

_AUTO_DEFAULT: ContextVar[bool] = ContextVar("repro_opt_auto_vectorize",
                                             default=False)


def auto_vectorize_default() -> bool:
    """Ambient body-compiler enablement for unhinted stages."""
    return _AUTO_DEFAULT.get()


@contextlib.contextmanager
def use_auto_vectorize(enabled: bool) -> Iterator[None]:
    """Scope the ambient ``vectorized="auto"`` default.

    Inside the context every eligible unhinted serial body is offered to
    the body compiler; stages it cannot compile keep their scalar path
    (with the fallback reason reported), so turning this on is always
    semantics-preserving.
    """
    token = _AUTO_DEFAULT.set(bool(enabled))
    try:
        yield
    finally:
        _AUTO_DEFAULT.reset(token)


class BatchKernel:
    """A compiled batch kernel: call with ``(logic, items, ctx)``.

    ``call`` is bound at compile time to either the user's free-function
    kernel (``logic``/``ctx`` ignored) or the stage class's unbound
    ``process_batch`` — the kernel object itself is instance-free so one
    cache entry serves every replica of the stage.

    ``blocks`` is the block-native handle (a
    :class:`~repro.core.opt.bodycomp.CompiledKernel` exposing
    ``call_block``/``call_items_block``) when the kernel can consume and
    produce ``ItemBlock`` columns directly; ``None`` means the columnar
    transport materializes items around this kernel instead.
    """

    __slots__ = ("call", "key", "blocks")

    def __init__(self, call: Callable[[Any, Sequence[Any], Any], Sequence[Any]],
                 key: Any, blocks: Any = None):
        self.call = call
        self.key = key
        self.blocks = blocks

    def __call__(self, logic: Any, items: Sequence[Any],
                 ctx: Any) -> Sequence[Any]:
        return self.call(logic, items, ctx)


_CACHE_LOCK = threading.Lock()
_KERNEL_CACHE: Dict[Any, BatchKernel] = {}
_CACHE_STATS = {"hits": 0, "misses": 0}


def kernel_cache_stats() -> Dict[str, int]:
    with _CACHE_LOCK:
        return dict(_CACHE_STATS)


def clear_kernel_cache() -> None:
    """Test hook: empty the caches and zero every counter.

    Clears the body-compiler cache too so cache-stat assertions are
    never order-dependent across tests.
    """
    with _CACHE_LOCK:
        _KERNEL_CACHE.clear()
        _CACHE_STATS["hits"] = 0
        _CACHE_STATS["misses"] = 0
    from repro.core.opt.bodycomp import clear_body_cache

    clear_body_cache()


def _compile(key: Any, build: Callable[[], BatchKernel]) -> BatchKernel:
    with _CACHE_LOCK:
        kernel = _KERNEL_CACHE.get(key)
        if kernel is not None:
            _CACHE_STATS["hits"] += 1
            return kernel
        _CACHE_STATS["misses"] += 1
        kernel = build()
        _KERNEL_CACHE[key] = kernel
        return kernel


def _has_process_batch(cls: type) -> bool:
    return getattr(cls, "process_batch", None) is not None


def get_kernel(spec: StageSpec, logic: Any) -> Optional[BatchKernel]:
    """Resolve the batch kernel for a unit, or None for item-at-a-time.

    Called by executors once per unit loop (and once per worker process
    under the process backend — the cache is per-process).
    """
    v = spec.vectorized
    if not v:
        return None
    if v == "auto":
        # the optimizer was off (or the body fell back): the hint was
        # never resolved to a kernel, so the stage runs item-at-a-time
        return None
    if callable(v) and not isinstance(v, bool):
        fn = v
        # compiled kernels expose column-level entry points; hand them to
        # the transport so consecutive compiled stages form columnar
        # segments with no per-item materialization at the hop
        blocks = fn if hasattr(fn, "call_block") else None

        def build_fn() -> BatchKernel:
            return BatchKernel(lambda logic, items, ctx: fn(items), key=fn,
                               blocks=blocks)

        return _compile(fn, build_fn)
    cls = type(logic)
    if not _has_process_batch(cls):
        raise GraphError(
            f"stage {spec.name!r}: vectorized=True but "
            f"{cls.__name__}.process_batch is not defined")
    method = cls.process_batch

    def build_cls() -> BatchKernel:
        return BatchKernel(
            lambda logic, items, ctx: method(logic, items, ctx), key=cls)

    return _compile(cls, build_cls)


def resolve_vectorized(spec: StageSpec) -> Any:
    """Normalize ``vectorized`` (auto-detect None) for one spec.

    Returns the literal ``"auto"`` both for the explicit hint and for
    unhinted stages under the ambient :func:`use_auto_vectorize`
    default; the vectorize pass resolves it through the body compiler.
    """
    v = spec.vectorized
    if v is None:
        # Auto-detect: instance-built or class-factory stages that define
        # process_batch.  Arbitrary factories are not probed (calling
        # them at plan time could run user side effects).
        factory = spec.factory
        if isinstance(factory, InstanceFactory):
            if _has_process_batch(type(factory.instance)):
                return True
        elif isinstance(factory, type) and issubclass(factory, Stage):
            if _has_process_batch(factory):
                return True
        if (auto_vectorize_default() and not spec.fused_from
                and spec.fusible is not True
                and not (spec.cost is not None
                         and spec.cost <= FUSE_COST_THRESHOLD)):
            # ambient auto never steals a stage the user hinted toward
            # fusion; explicit vectorized="auto" (below) always wins
            return "auto"
        return False
    return v


def _try_bodycomp(spec: StageSpec, report: OptReport) -> StageSpec:
    """Resolve an ``"auto"`` hint through the body compiler."""
    from repro.core.opt.bodycomp import try_compile_spec

    kernel, reason = try_compile_spec(spec)
    if kernel is None:
        report.bodycomp[spec.name] = f"fallback:{reason}"
        return spec  # scalar path, exactly as before
    report.bodycomp[spec.name] = "compiled"
    report.vectorized.append(spec.name)
    before = kernel_cache_stats()["misses"]
    compiled = replace(spec, vectorized=kernel)
    get_kernel(compiled, None)  # pre-warm through the keyed cache
    report.kernels_compiled += kernel_cache_stats()["misses"] - before
    return compiled


def _vectorize_spec(spec: StageSpec, report: OptReport) -> StageSpec:
    v = resolve_vectorized(spec)
    if not v:
        return spec
    if v == "auto":
        return _try_bodycomp(spec, report)
    report.vectorized.append(spec.name)
    # Pre-warm the cache where the key is known without an instance;
    # misses counted here are the pass's "kernels compiled" number.
    before = kernel_cache_stats()["misses"]
    if callable(v) and not isinstance(v, bool):
        get_kernel(spec, None)
    else:
        factory = spec.factory
        if isinstance(factory, InstanceFactory):
            get_kernel(replace(spec, vectorized=True), factory.instance)
        elif isinstance(factory, type) and _has_process_batch(factory):
            cls = factory
            method = cls.process_batch
            _compile(cls, lambda: BatchKernel(
                lambda logic, items, ctx: method(logic, items, ctx), key=cls))
    report.kernels_compiled += kernel_cache_stats()["misses"] - before
    return replace(spec, vectorized=v)


def vectorize_stages(elements: Sequence[Element],
                     report: OptReport) -> List[Element]:
    """Run the vectorize pass; records what happened in ``report``."""
    report.passes.append("vectorize")
    out: List[Element] = []
    for el in elements:
        if isinstance(el, StageSpec):
            out.append(_vectorize_spec(el, report))
            continue
        chain = _worker_chain(el)
        new_chain = [_vectorize_spec(s, report) for s in chain]
        if all(a is b for a, b in zip(chain, new_chain)):
            out.append(el)
            continue
        worker: Union[StageSpec, Pipe]
        if len(new_chain) == 1:
            worker = new_chain[0]
        else:
            name = (el.worker.name if isinstance(el.worker, Pipe)
                    else el.name)
            worker = Pipe(new_chain, name=name)
        out.append(Farm(worker=worker, replicas=el.replicas,
                        ordered=el.ordered, scheduling=el.scheduling,
                        placement=el.placement, name=el.name,
                        min_replicas=el.min_replicas,
                        max_replicas=el.max_replicas))
    return out
