"""Batch-vectorization pass: lower flagged stages to batch kernels.

A vectorized stage consumes a whole ``get_many`` batch per call instead
of item-at-a-time, which turns ``ExecConfig.batch_size`` from a hand-off
amortizer into a real compute-granularity knob (the numpy/GPU-shaped
input the simulated accelerator path wants).

Kernels are compiled once through a keyed cache — the key is the user's
kernel callable, or the stage class for ``process_batch`` stages — so a
controller flipping ``batch_size`` mid-run only changes how many items
each call receives; it re-triggers cache *lookups*, never recompiles.

The batch contract is strict 1:1 map: ``kernel(items) -> outputs`` with
``len(outputs) == len(items)``.  Filtering (``None``) and fan-out
(``Multi``) stay on the item-at-a-time path; executors enforce the
contract at runtime.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.graph import Farm, GraphError, Pipe, StageSpec, _worker_chain
from repro.core.opt.report import OptReport
from repro.core.stage import InstanceFactory, Stage

Element = Union[StageSpec, Farm]


class BatchKernel:
    """A compiled batch kernel: call with ``(logic, items, ctx)``.

    ``call`` is bound at compile time to either the user's free-function
    kernel (``logic``/``ctx`` ignored) or the stage class's unbound
    ``process_batch`` — the kernel object itself is instance-free so one
    cache entry serves every replica of the stage.
    """

    __slots__ = ("call", "key")

    def __init__(self, call: Callable[[Any, Sequence[Any], Any], Sequence[Any]],
                 key: Any):
        self.call = call
        self.key = key

    def __call__(self, logic: Any, items: Sequence[Any],
                 ctx: Any) -> Sequence[Any]:
        return self.call(logic, items, ctx)


_CACHE_LOCK = threading.Lock()
_KERNEL_CACHE: Dict[Any, BatchKernel] = {}
_CACHE_STATS = {"hits": 0, "misses": 0}


def kernel_cache_stats() -> Dict[str, int]:
    with _CACHE_LOCK:
        return dict(_CACHE_STATS)


def clear_kernel_cache() -> None:
    """Test hook: empty the cache and zero the hit/miss counters."""
    with _CACHE_LOCK:
        _KERNEL_CACHE.clear()
        _CACHE_STATS["hits"] = 0
        _CACHE_STATS["misses"] = 0


def _compile(key: Any, build: Callable[[], BatchKernel]) -> BatchKernel:
    with _CACHE_LOCK:
        kernel = _KERNEL_CACHE.get(key)
        if kernel is not None:
            _CACHE_STATS["hits"] += 1
            return kernel
        _CACHE_STATS["misses"] += 1
        kernel = build()
        _KERNEL_CACHE[key] = kernel
        return kernel


def _has_process_batch(cls: type) -> bool:
    return getattr(cls, "process_batch", None) is not None


def get_kernel(spec: StageSpec, logic: Any) -> Optional[BatchKernel]:
    """Resolve the batch kernel for a unit, or None for item-at-a-time.

    Called by executors once per unit loop (and once per worker process
    under the process backend — the cache is per-process).
    """
    v = spec.vectorized
    if not v:
        return None
    if callable(v) and not isinstance(v, bool):
        fn = v

        def build_fn() -> BatchKernel:
            return BatchKernel(lambda logic, items, ctx: fn(items), key=fn)

        return _compile(fn, build_fn)
    cls = type(logic)
    if not _has_process_batch(cls):
        raise GraphError(
            f"stage {spec.name!r}: vectorized=True but "
            f"{cls.__name__}.process_batch is not defined")
    method = cls.process_batch

    def build_cls() -> BatchKernel:
        return BatchKernel(
            lambda logic, items, ctx: method(logic, items, ctx), key=cls)

    return _compile(cls, build_cls)


def resolve_vectorized(spec: StageSpec) -> Any:
    """Normalize ``vectorized`` (auto-detect None) for one spec."""
    v = spec.vectorized
    if v is None:
        # Auto-detect: instance-built or class-factory stages that define
        # process_batch.  Arbitrary factories are not probed (calling
        # them at plan time could run user side effects).
        factory = spec.factory
        if isinstance(factory, InstanceFactory):
            return _has_process_batch(type(factory.instance))
        if isinstance(factory, type) and issubclass(factory, Stage):
            return _has_process_batch(factory)
        return False
    return v


def _vectorize_spec(spec: StageSpec, report: OptReport) -> StageSpec:
    v = resolve_vectorized(spec)
    if not v:
        return spec
    report.vectorized.append(spec.name)
    # Pre-warm the cache where the key is known without an instance;
    # misses counted here are the pass's "kernels compiled" number.
    before = kernel_cache_stats()["misses"]
    if callable(v) and not isinstance(v, bool):
        get_kernel(spec, None)
    else:
        factory = spec.factory
        if isinstance(factory, InstanceFactory):
            get_kernel(replace(spec, vectorized=True), factory.instance)
        elif isinstance(factory, type) and _has_process_batch(factory):
            cls = factory
            method = cls.process_batch
            _compile(cls, lambda: BatchKernel(
                lambda logic, items, ctx: method(logic, items, ctx), key=cls))
    report.kernels_compiled += kernel_cache_stats()["misses"] - before
    return replace(spec, vectorized=v)


def vectorize_stages(elements: Sequence[Element],
                     report: OptReport) -> List[Element]:
    """Run the vectorize pass; records what happened in ``report``."""
    report.passes.append("vectorize")
    out: List[Element] = []
    for el in elements:
        if isinstance(el, StageSpec):
            out.append(_vectorize_spec(el, report))
            continue
        chain = _worker_chain(el)
        new_chain = [_vectorize_spec(s, report) for s in chain]
        if all(a is b for a, b in zip(chain, new_chain)):
            out.append(el)
            continue
        worker: Union[StageSpec, Pipe]
        if len(new_chain) == 1:
            worker = new_chain[0]
        else:
            name = (el.worker.name if isinstance(el.worker, Pipe)
                    else el.name)
            worker = Pipe(new_chain, name=name)
        out.append(Farm(worker=worker, replicas=el.replicas,
                        ordered=el.ordered, scheduling=el.scheduling,
                        placement=el.placement, name=el.name,
                        min_replicas=el.min_replicas,
                        max_replicas=el.max_replicas))
    return out
