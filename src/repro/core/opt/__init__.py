"""Graph optimizer: deterministic passes between the IR and the plan.

``optimize`` rewrites a *flattened* element list (``StageSpec | Farm``)
before :func:`repro.core.plan.build_plan` lowers it.  Pass ordering is a
contract: **fusion first, then vectorization** — fusion sees the
original per-stage hints and never consumes a vectorized stage, and
vectorization sees final unit boundaries.  Passes are pure functions of
the element list plus spec hints, so the same graph always optimizes the
same way.

Enablement resolves in two steps, mirroring the ambient TuningPolicy:
``ExecConfig.optimize`` when set (per run), else the ambient default
installed by :func:`use_optimizer` (the harness's ``--no-opt``), else
on.  The result of every run is an :class:`OptReport`, attached to the
plan and surfaced in ``RunResult.details["opt"]``; an ambient collector
(:func:`collect_reports`) lets the harness aggregate reports across the
many runs inside one experiment.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.graph import Farm, StageSpec
from repro.core.opt.bodycomp import (
    CompiledKernel,
    UnsupportedConstruct,
    bodycomp_stats,
    try_compile_spec,
)
from repro.core.opt.fused import FusedFactory, FusedStage
from repro.core.opt.fusion import FUSE_COST_THRESHOLD, fuse_stages
from repro.core.opt.report import OptReport
from repro.core.opt.vectorize import (
    BatchKernel,
    auto_vectorize_default,
    clear_kernel_cache,
    get_kernel,
    kernel_cache_stats,
    use_auto_vectorize,
    vectorize_stages,
)

__all__ = [
    "FUSE_COST_THRESHOLD",
    "BatchKernel",
    "CompiledKernel",
    "FusedFactory",
    "FusedStage",
    "OptReport",
    "UnsupportedConstruct",
    "auto_vectorize_default",
    "bodycomp_stats",
    "clear_kernel_cache",
    "collect_reports",
    "get_kernel",
    "kernel_cache_stats",
    "optimize",
    "optimizer_default",
    "try_compile_spec",
    "use_auto_vectorize",
    "use_optimizer",
]

Element = Union[StageSpec, Farm]

_DEFAULT_ON: ContextVar[bool] = ContextVar("repro_opt_default", default=True)
_COLLECTOR: ContextVar[Optional[list]] = ContextVar(
    "repro_opt_collector", default=None)


def optimizer_default() -> bool:
    """Ambient enablement used when ``ExecConfig.optimize`` is None."""
    return _DEFAULT_ON.get()


@contextlib.contextmanager
def use_optimizer(enabled: bool) -> Iterator[None]:
    """Scope the ambient optimizer default (harness ``--opt/--no-opt``)."""
    token = _DEFAULT_ON.set(bool(enabled))
    try:
        yield
    finally:
        _DEFAULT_ON.reset(token)


@contextlib.contextmanager
def collect_reports(into: List[OptReport]) -> Iterator[List[OptReport]]:
    """Scope an ambient sink receiving every OptReport produced within."""
    token = _COLLECTOR.set(into)
    try:
        yield into
    finally:
        _COLLECTOR.reset(token)


def optimize(elements: Sequence[Element]) -> Tuple[List[Element], OptReport]:
    """Run the pass pipeline over flattened elements.

    Returns the rewritten element list and the report; the input list
    and its specs are never mutated (rewrites build new specs).
    """
    report = OptReport()
    out = fuse_stages(list(elements), report)
    out = vectorize_stages(out, report)
    sink = _COLLECTOR.get()
    if sink is not None:
        sink.append(report)
    return out, report
