"""Kernel IR: the typed mini-language the body compiler lowers into.

A scalar ``process`` body that survives :mod:`repro.core.opt.bodycomp`'s
front end becomes a small expression tree over these nodes.  The tree is
deliberately pure — no assignment, no control flow, no effects — because
the lowering already resolved locals by substitution and branches into
:class:`Where` merges.  That purity is what makes the NumPy translation
a straight tree walk: every node renders to one vectorized expression
over whole-batch columns.

Nodes compare by identity (``eq=False``): the compiler shares subtrees
whenever a local is referenced twice, and the renderer exploits exactly
that sharing to emit each distinct subexpression once (a free common-
subexpression elimination).

:func:`render_kernel` turns a result tree plus the discovered input
columns into the source of ``_kernel(items) -> outputs``, the strict
1:1 batch-kernel shape the executors already run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple


class UnsupportedConstruct(Exception):
    """Raised by the front end when a body leaves the numeric subset.

    ``reason`` is a short slug (``"loop"``, ``"multi-emission"``, ...)
    recorded verbatim in the OptReport fallback disposition.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True, eq=False)
class Node:
    """Base class; identity semantics are load-bearing (see module doc)."""


@dataclass(frozen=True, eq=False)
class Input(Node):
    """A batch column: the item itself, a field, or a const tuple index."""

    kind: str  # "item" | "field" | "index"
    ref: Any = None


@dataclass(frozen=True, eq=False)
class Const(Node):
    value: Any  # int | float | bool | complex


@dataclass(frozen=True, eq=False)
class Bin(Node):
    op: str  # "+", "-", "*", "/", "//", "%", "**", "&", "|", "^", "<<", ">>"
    left: Node
    right: Node


@dataclass(frozen=True, eq=False)
class Un(Node):
    op: str  # "-", "+", "~"
    operand: Node


@dataclass(frozen=True, eq=False)
class Cmp(Node):
    op: str  # "<", "<=", ">", ">=", "==", "!="
    left: Node
    right: Node


@dataclass(frozen=True, eq=False)
class Not(Node):
    operand: Node


@dataclass(frozen=True, eq=False)
class Where(Node):
    """``then if cond else other``, elementwise."""

    cond: Node
    then: Node
    other: Node


@dataclass(frozen=True, eq=False)
class Call(Node):
    """A whitelisted function; ``func`` keys :data:`CALL_TEMPLATES` or,
    with an ``np:`` prefix, names a numpy ufunc directly."""

    func: str
    args: Tuple[Node, ...]


@dataclass(frozen=True, eq=False)
class Tup(Node):
    """Tuple value — legal at the result position and inside locals."""

    parts: Tuple[Node, ...]


#: non-ufunc call shapes; ``{0}``/``{1}`` are rendered argument names.
#: ``math.floor``/``ceil``/``trunc`` and ``int()``/``round()`` return
#: Python ints, so their lowerings cast to int64 to keep the compiled
#: outputs element-for-element identical to the scalar loop.
CALL_TEMPLATES: Dict[str, str] = {
    "abs": "_np.abs({0})",
    "int": "_np.asarray({0}).astype(_np.int64)",
    "float": "_np.asarray({0}, dtype=_np.float64)",
    "bool": "_np.asarray({0}).astype(_np.bool_)",
    "min2": "_np.minimum({0}, {1})",
    "max2": "_np.maximum({0}, {1})",
    "floor_int": "_np.floor({0}).astype(_np.int64)",
    "ceil_int": "_np.ceil({0}).astype(_np.int64)",
    "trunc_int": "_np.trunc({0}).astype(_np.int64)",
    "round_int": "_np.rint({0}).astype(_np.int64)",
    "round_n": "_np.round({0}, {1})",
}


def _literal(value: Any) -> str:
    """Render an inlined constant; special-cases non-literal floats."""
    if isinstance(value, float):
        if math.isnan(value):
            return "(_np.nan)"
        if math.isinf(value):
            return "(_np.inf)" if value > 0 else "(-_np.inf)"
    text = repr(value)
    return f"({text})" if text.startswith("-") else text


def _column_expr(inp: Input) -> str:
    if inp.kind == "item":
        return "_np.asarray(items)"
    if inp.kind == "field":
        return f"_np.asarray([_i.{inp.ref} for _i in items])"
    return f"_np.asarray([_i[{inp.ref!r}] for _i in items])"


def _emit(node: Node, lines: List[str], memo: Dict[int, str],
          counter: List[int]) -> str:
    """Render ``node`` into ``lines``, returning its variable/literal."""
    key = id(node)
    if key in memo:
        return memo[key]
    if isinstance(node, Const):
        expr = _literal(node.value)
        memo[key] = expr
        return expr

    def sub(child: Node) -> str:
        return _emit(child, lines, memo, counter)

    if isinstance(node, Bin):
        expr = f"{sub(node.left)} {node.op} {sub(node.right)}"
    elif isinstance(node, Un):
        expr = f"{node.op}{sub(node.operand)}"
    elif isinstance(node, Cmp):
        expr = f"{sub(node.left)} {node.op} {sub(node.right)}"
    elif isinstance(node, Not):
        expr = f"_np.logical_not({sub(node.operand)})"
    elif isinstance(node, Where):
        expr = (f"_np.where({sub(node.cond)}, {sub(node.then)}, "
                f"{sub(node.other)})")
    elif isinstance(node, Call):
        args = [sub(a) for a in node.args]
        if node.func.startswith("np:"):
            expr = f"_np.{node.func[3:]}({', '.join(args)})"
        else:
            expr = CALL_TEMPLATES[node.func].format(*args)
    else:  # pragma: no cover - compiler invariant
        raise UnsupportedConstruct(f"internal:{type(node).__name__}")
    name = f"_t{counter[0]}"
    counter[0] += 1
    lines.append(f"        {name} = {expr}")
    memo[key] = name
    return name


def render_kernel(result: Node,
                  inputs: Dict[Tuple[str, Any], Input]) -> str:
    """Source of the kernel family for one body.

    Four functions are rendered so the block transport can enter at the
    column level without changing the established item-level contract:

    - ``_extract(items)`` — the input columns, one numpy array per
      :class:`Input` in first-use order.
    - ``_kernel_cols(_cols, _n)`` — the whole computation over column
      arrays, returning a tuple of output arrays (one per result part)
      each broadcast to ``(_n,)``.  This is the block-native entry: an
      ``ItemBlock``'s columns go in, the next block's columns come out,
      with no per-item materialization in between.
    - ``_kernel(items)`` — the strict 1:1 item-level kernel the
      executors already run: extract, compute, materialize.
    - ``_sig(items)`` — the dtype-signature probe over the same columns.

    The result is broadcast to the batch length before conversion so
    bodies that collapse to a constant still honour the 1:1 contract.
    """
    n_in = len(inputs)
    lines = ["def _extract(items):"]
    if n_in:
        lines.append("    return (" +
                     ", ".join(_column_expr(inp)
                               for inp in inputs.values()) + ",)")
    else:
        lines.append("    return ()")
    lines.append("")
    # np.where evaluates both arms over the whole batch, so a scalar
    # body's guard (e.g. sqrt only when t >= 0) no longer protects the
    # other arm — the unselected lanes may raise FP warnings the scalar
    # loop never would.  errstate silences them; where still picks the
    # guarded value, so outputs are unaffected.
    lines.append("def _kernel_cols(_cols, _n):")
    memo: Dict[int, str] = {}
    for i, inp in enumerate(inputs.values()):
        lines.append(f"    _c{i} = _cols[{i}]")
        memo[id(inp)] = f"_c{i}"
    lines.append("    with _np.errstate(divide='ignore', invalid='ignore',"
                 " over='ignore'):")
    counter = [0]
    parts = (list(result.parts) if isinstance(result, Tup) else [result])
    names = [_emit(p, lines, memo, counter) for p in parts]
    if counter[0] == 0:
        # pure pass-through/const body: errstate block needs a statement
        lines.append("        pass")
    lines.append("    return (" +
                 ", ".join(f"_np.broadcast_to(_np.asarray({p}), (_n,))"
                           for p in names) + ",)")
    lines.append("")
    lines.append("def _kernel(items):")
    lines.append("    _n = len(items)")
    lines.append("    if _n == 0:")
    lines.append("        return []")
    lines.append("    _res = _kernel_cols(_extract(items), _n)")
    if isinstance(result, Tup):
        lines.append("    return list(zip(*[_o.tolist() for _o in _res]))")
    else:
        lines.append("    return _res[0].tolist()")
    # the dtype-signature probe reuses the column extraction verbatim
    lines.append("")
    lines.append("def _sig(items):")
    if n_in:
        lines.append("    return tuple(_c.dtype.name"
                     " for _c in _extract(items))")
    else:
        lines.append("    return ()")
    return "\n".join(lines) + "\n"
