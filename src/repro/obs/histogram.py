"""Log-bucketed latency histograms aggregated per stage/replica.

Service latencies in this codebase span nine orders of magnitude (a
virtual queue op is ~25 ns, a Mandelbrot GPU batch is ~10 ms), so the
buckets are logarithmic: bucket ``i`` holds values in
``[LOW * GROWTH**i, LOW * GROWTH**(i+1))``.  With ``GROWTH = 2`` each
bucket is one octave; percentile queries return the upper bound of the
bucket that crosses the requested rank, which bounds the relative error
by the growth factor.
"""

from __future__ import annotations

import math
from typing import Dict, List

#: lower bound of bucket 0 (1 ns — below any modeled latency)
_LOW = 1e-9
_GROWTH = 2.0
_LOG_GROWTH = math.log(_GROWTH)


class LatencyHistogram:
    """Counts of observed latencies in logarithmic buckets."""

    __slots__ = ("counts", "n", "total", "min", "max")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.n = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    @staticmethod
    def bucket_of(value: float) -> int:
        if value <= _LOW:
            return 0
        return int(math.log(value / _LOW) / _LOG_GROWTH) + 1

    @staticmethod
    def bucket_upper(index: int) -> float:
        """Upper bound (seconds) of bucket ``index``."""
        return _LOW * _GROWTH ** index

    def add(self, value: float) -> None:
        b = self.bucket_of(value)
        self.counts[b] = self.counts.get(b, 0) + 1
        if self.n == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.n += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-quantile for ``q`` in [0, 1].

        An empty histogram returns 0.0 for any valid ``q``; ``q``
        outside [0, 1] raises :class:`ValueError`.  ``q = 0`` returns
        the observed minimum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.n == 0:
            return 0.0
        if q == 0.0:
            return self.min
        rank = math.ceil(self.n * q)
        seen = 0
        for b in sorted(self.counts):
            seen += self.counts[b]
            if seen >= rank:
                return min(self.bucket_upper(b), self.max)
        return self.max  # pragma: no cover - rank <= n always hits a bucket

    def merge(self, other: "LatencyHistogram") -> None:
        if other.n == 0:
            return
        if self.n == 0 or other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.n += other.n
        self.total += other.total
        for b, c in other.counts.items():
            self.counts[b] = self.counts.get(b, 0) + c

    def as_dict(self) -> Dict[str, object]:
        buckets: List[Dict[str, float]] = [
            {"le": self.bucket_upper(b), "count": self.counts[b]}
            for b in sorted(self.counts)
        ]
        return {
            "count": self.n,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "buckets": buckets,
        }
