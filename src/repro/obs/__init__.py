"""``repro.obs`` — the unified observability layer.

One tracing subsystem shared by both executors behind an abstract
:class:`~repro.obs.clock.Clock`: per-item spans (stage service, queue
put/get wait, token gate, GPU kernel and copy-engine busy intervals),
queue-occupancy counters, per-stage/replica latency histograms, and
exporters to raw JSON and Chrome ``trace_event`` format.

Typical use::

    from repro.obs import SpanRecorder, write_chrome_trace
    rec = SpanRecorder()
    result = repro.run(pipeline, mode="simulated", tracer=rec)
    write_chrome_trace(rec, "run.trace.json")   # open in chrome://tracing

Tracing is zero-cost when disabled: the default tracer is
:data:`~repro.obs.tracer.NOOP_TRACER` and every hook sits behind a
hoisted ``enabled`` check.
"""

from repro.obs.clock import Clock, SimClock, WallClock
from repro.obs.export import (
    chrome_trace,
    trace_summary,
    write_chrome_trace,
    write_trace_json,
)
from repro.obs.histogram import LatencyHistogram
from repro.obs.tracer import (
    CAT_COLLECTOR,
    CAT_COPY,
    CAT_KERNEL,
    CAT_QUEUE,
    CAT_SPAR,
    CAT_STAGE,
    CAT_TOKEN,
    CAT_USER,
    NOOP_TRACER,
    CounterEvent,
    InstantEvent,
    RunInfo,
    SpanEvent,
    SpanRecorder,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "Clock",
    "WallClock",
    "SimClock",
    "LatencyHistogram",
    "Tracer",
    "NOOP_TRACER",
    "SpanRecorder",
    "SpanEvent",
    "CounterEvent",
    "InstantEvent",
    "RunInfo",
    "current_tracer",
    "use_tracer",
    "chrome_trace",
    "trace_summary",
    "write_chrome_trace",
    "write_trace_json",
    "CAT_STAGE",
    "CAT_QUEUE",
    "CAT_TOKEN",
    "CAT_COLLECTOR",
    "CAT_KERNEL",
    "CAT_COPY",
    "CAT_SPAR",
    "CAT_USER",
]
