"""``repro.obs`` — the unified observability layer.

One tracing subsystem shared by both executors behind an abstract
:class:`~repro.obs.clock.Clock`: per-item spans (stage service, queue
put/get wait, token gate, GPU kernel and copy-engine busy intervals),
queue-occupancy counters, per-stage/replica latency histograms, and
exporters to raw JSON and Chrome ``trace_event`` format.

Typical use::

    from repro.obs import SpanRecorder, write_chrome_trace
    rec = SpanRecorder()
    result = repro.run(pipeline, mode="simulated", tracer=rec)
    write_chrome_trace(rec, "run.trace.json")   # open in chrome://tracing

Tracing is zero-cost when disabled: the default tracer is
:data:`~repro.obs.tracer.NOOP_TRACER` and every hook sits behind a
hoisted ``enabled`` check.

Alongside the post-hoc tracer sits the **live** telemetry layer
(:mod:`repro.obs.metrics`): lock-free per-unit probes merged every
tumbling window into immutable :class:`TelemetrySnapshot` objects with
per-stage throughput/service quantiles, per-edge occupancy/wait rates
and a derived bottleneck attribution — exposed via subscriber
callbacks, a Prometheus ``/metrics`` endpoint
(:mod:`repro.obs.promhttp`, ``ExecConfig.metrics_port``) and the
harness ``--live`` ticker.
"""

from repro.obs.clock import Clock, SimClock, WallClock
from repro.obs.export import (
    chrome_trace,
    trace_summary,
    write_chrome_trace,
    write_trace_json,
)
from repro.obs.histogram import LatencyHistogram
from repro.obs.metrics import (
    LiveTelemetry,
    MetricsRegistry,
    Sampler,
    UnitProbe,
    current_registry,
    use_registry,
)
from repro.obs.promhttp import (
    MetricsPortError,
    MetricsServer,
    parse_exposition,
    render_exposition,
)
from repro.obs.snapshot import (
    BALANCED,
    CONSUMER_LIMITED,
    PRODUCER_LIMITED,
    EdgeWindow,
    StageWindow,
    TelemetrySnapshot,
)
from repro.obs.tracer import (
    CAT_COLLECTOR,
    CAT_CONTROL,
    CAT_COPY,
    CAT_KERNEL,
    CAT_QUEUE,
    CAT_SPAR,
    CAT_STAGE,
    CAT_TOKEN,
    CAT_USER,
    NOOP_TRACER,
    CounterEvent,
    InstantEvent,
    RunInfo,
    SpanEvent,
    SpanRecorder,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "Clock",
    "WallClock",
    "SimClock",
    "LatencyHistogram",
    "Tracer",
    "NOOP_TRACER",
    "SpanRecorder",
    "SpanEvent",
    "CounterEvent",
    "InstantEvent",
    "RunInfo",
    "current_tracer",
    "use_tracer",
    "chrome_trace",
    "trace_summary",
    "write_chrome_trace",
    "write_trace_json",
    "CAT_STAGE",
    "CAT_QUEUE",
    "CAT_TOKEN",
    "CAT_COLLECTOR",
    "CAT_CONTROL",
    "CAT_KERNEL",
    "CAT_COPY",
    "CAT_SPAR",
    "CAT_USER",
    "MetricsRegistry",
    "UnitProbe",
    "Sampler",
    "LiveTelemetry",
    "TelemetrySnapshot",
    "StageWindow",
    "EdgeWindow",
    "PRODUCER_LIMITED",
    "CONSUMER_LIMITED",
    "BALANCED",
    "current_registry",
    "use_registry",
    "MetricsPortError",
    "MetricsServer",
    "render_exposition",
    "parse_exposition",
]
