"""Structured tracing: spans, counters and instants over an abstract clock.

The default tracer is :data:`NOOP_TRACER` — a :class:`Tracer` whose every
method is a no-op and whose ``enabled`` flag is ``False``.  Hot paths in
the executors check that flag once and skip all instrumentation, so an
untraced run pays nothing.

A :class:`SpanRecorder` collects events in memory: per-item spans (stage
service, queue put/get wait, token wait, GPU kernel and copy-engine busy
intervals), queue-occupancy counter samples, and instant markers.  It
also feeds a log-bucketed :class:`~repro.obs.histogram.LatencyHistogram`
per (stage, replica track) from the stage spans, so percentile service
latencies come for free with any trace.

The active tracer travels in a context variable (like
:func:`repro.sim.context.current_cursor`) so deeply nested code — the GPU
device model, SPar's generated stages — can emit events without
plumbing.  Context variables do **not** propagate into spawned threads;
the native executor re-installs the tracer inside every thread body via
:func:`use_tracer`.
"""

from __future__ import annotations

import contextlib
import threading
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.clock import Clock
from repro.obs.histogram import LatencyHistogram
from repro.sim.context import current_cursor

#: span categories — each becomes a Chrome trace track type
CAT_STAGE = "stage"          #: CPU stage service interval (per item)
CAT_QUEUE = "queue"          #: time blocked on a bounded queue put/get
CAT_TOKEN = "token"          #: source blocked on the TBB token gate
CAT_COLLECTOR = "collector"  #: sequencer/collector reorder activity
CAT_KERNEL = "kernel"        #: GPU compute-engine busy interval
CAT_COPY = "copy"            #: GPU copy-engine (H2D/D2H/D2D) busy interval
CAT_SPAR = "spar"            #: SPar Target-stage host-side occupation
CAT_USER = "user"            #: instants emitted from user stage code
CAT_CONTROL = "control"      #: autonomic-controller actions (instants)


@dataclass
class SpanEvent:
    """A closed interval on one track (Chrome ``ph:"X"``)."""

    run: int
    cat: str
    track: str
    name: str
    start: float
    end: float
    args: Optional[Dict[str, Any]] = None


@dataclass
class CounterEvent:
    """A sampled value over time (Chrome ``ph:"C"``), e.g. queue occupancy."""

    run: int
    track: str
    name: str
    t: float
    value: float


@dataclass
class InstantEvent:
    """A point-in-time marker (Chrome ``ph:"i"``)."""

    run: int
    track: str
    name: str
    t: float
    args: Optional[Dict[str, Any]] = None


@dataclass
class RunInfo:
    """One executor run inside a recorder (its own Chrome process)."""

    index: int
    name: str
    mode: str
    makespan: Optional[float] = None
    meta: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """No-op base tracer; every recording method does nothing.

    ``enabled`` is a class attribute so executors can hoist the check out
    of their per-item loops.
    """

    enabled = False

    def begin_run(self, name: str, mode: str,
                  clock: Optional[Clock] = None) -> int:
        """Open a new run scope; returns its index (0 for the no-op)."""
        return 0

    def end_run(self, makespan: Optional[float] = None) -> None:
        """Close the current run scope."""

    def span(self, cat: str, track: str, name: str, start: float, end: float,
             args: Optional[Dict[str, Any]] = None) -> None:
        """Record a closed ``[start, end]`` interval on ``track``."""

    def instant(self, track: str, name: str, t: Optional[float] = None,
                args: Optional[Dict[str, Any]] = None) -> None:
        """Record a point-in-time marker."""

    def counter(self, track: str, name: str, t: float, value: float) -> None:
        """Record one sample of a time-varying value."""

    def now(self) -> float:
        """Current time on the active run's clock (0.0 for the no-op)."""
        return 0.0

    @property
    def events(self) -> Tuple[Any, ...]:
        """All recorded events (empty for the no-op tracer)."""
        return ()


#: the shared do-nothing tracer installed by default
NOOP_TRACER = Tracer()


class SpanRecorder(Tracer):
    """In-memory tracer; feed it to :func:`repro.run` or install it
    ambiently with :func:`use_tracer`, then export via
    :mod:`repro.obs.export`."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.runs: List[RunInfo] = []
        self.spans: List[SpanEvent] = []
        self.counters: List[CounterEvent] = []
        self.instants: List[InstantEvent] = []
        #: (stage name, track) -> service-latency histogram
        self.histograms: Dict[Tuple[str, str], LatencyHistogram] = {}
        self._clock: Optional[Clock] = None
        self._run = 0

    # -- run scoping -----------------------------------------------------
    def begin_run(self, name: str, mode: str,
                  clock: Optional[Clock] = None) -> int:
        with self._lock:
            self._run += 1
            self.runs.append(RunInfo(self._run, name, mode))
            self._clock = clock
            return self._run

    def end_run(self, makespan: Optional[float] = None) -> None:
        with self._lock:
            if self.runs:
                self.runs[-1].makespan = makespan
            self._clock = None

    # -- recording -------------------------------------------------------
    def span(self, cat: str, track: str, name: str, start: float, end: float,
             args: Optional[Dict[str, Any]] = None) -> None:
        with self._lock:
            self.spans.append(SpanEvent(self._run, cat, track, name,
                                        start, end, args))
            if cat == CAT_STAGE:
                h = self.histograms.get((name, track))
                if h is None:
                    h = self.histograms[(name, track)] = LatencyHistogram()
                h.add(end - start)

    def instant(self, track: str, name: str, t: Optional[float] = None,
                args: Optional[Dict[str, Any]] = None) -> None:
        with self._lock:
            self.instants.append(InstantEvent(
                self._run, track, name, self.now() if t is None else t, args))

    def counter(self, track: str, name: str, t: float, value: float) -> None:
        with self._lock:
            self.counters.append(CounterEvent(self._run, track, name, t, value))

    # -- clocks ----------------------------------------------------------
    def now(self) -> float:
        """Time on the active clock.

        An active :class:`~repro.sim.context.WorkCursor` wins: inside a
        simulated stage invocation the cursor is ahead of the engine (it
        accumulates the invocation's virtual cost before the process
        sleeps), so intra-stage events land at their true virtual time.
        """
        cur = current_cursor()
        if cur is not None:
            return cur.now
        clock = self._clock
        return clock.now() if clock is not None else 0.0

    # -- queries ---------------------------------------------------------
    @property
    def events(self) -> Tuple[Any, ...]:
        return tuple(self.spans) + tuple(self.counters) + tuple(self.instants)

    def spans_by_cat(self, cat: str) -> List[SpanEvent]:
        return [s for s in self.spans if s.cat == cat]

    def track_types(self) -> set:
        """Distinct span categories recorded (acceptance: >= 4 for a
        traced hybrid run: stage, queue, kernel, copy)."""
        return {s.cat for s in self.spans}

    def stage_histogram(self, stage: str) -> LatencyHistogram:
        """Service-latency histogram for ``stage`` merged over replicas."""
        merged = LatencyHistogram()
        for (name, _track), h in self.histograms.items():
            if name == stage:
                merged.merge(h)
        return merged


_TRACER: ContextVar[Optional[Tracer]] = ContextVar("repro_tracer", default=None)


def current_tracer() -> Tracer:
    """The ambient tracer (:data:`NOOP_TRACER` when none is installed)."""
    t = _TRACER.get()
    return t if t is not None else NOOP_TRACER


@contextlib.contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the enclosed block."""
    token = _TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _TRACER.reset(token)
