"""The single abstract clock behind both executors' tracing.

Span timestamps must be comparable within one run but mean different
things per executor: the native executor stamps wall-clock seconds since
the run started (:class:`WallClock`), the simulated executor stamps the
engine's virtual time (:class:`SimClock`).  The tracer only ever calls
``now()``; everything downstream (histograms, Chrome export) is
clock-agnostic.
"""

from __future__ import annotations

import time
from typing import Callable


class Clock:
    """Source of span timestamps, in seconds from the run's origin."""

    def now(self) -> float:
        raise NotImplementedError


class WallClock(Clock):
    """Real time relative to construction (``time.perf_counter`` based)."""

    def __init__(self) -> None:
        self.origin = time.perf_counter()

    def now(self) -> float:
        return time.perf_counter() - self.origin


class SimClock(Clock):
    """Virtual time read from the discrete-event engine (or any callable)."""

    def __init__(self, now_fn: Callable[[], float]):
        self._now_fn = now_fn

    def now(self) -> float:
        return self._now_fn()
