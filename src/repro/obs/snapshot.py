"""Immutable telemetry snapshots: one tumbling window of a live run.

A :class:`TelemetrySnapshot` is what the
:class:`~repro.obs.metrics.Sampler` produces every window (250 ms by
default): per-stage throughput and service-time quantiles, per-edge
occupancy and put/get-wait rates, and a derived **bottleneck
attribution**.  Snapshots are plain frozen dataclasses built from
*diffs* of the registry's cumulative counters, so they are safe to hand
to subscriber callbacks, serialize to JSON (:meth:`as_dict`), or render
as Prometheus exposition text — the hot path never sees them.

Attribution semantics (wait-span ratios, per edge):

* producers blocked pushing (``put_wait`` dominates) means the
  *consumer* cannot keep up — the edge is **consumer-limited**;
* consumers blocked popping (``get_wait`` dominates) means the
  *producer* cannot feed them — the edge is **producer-limited**;
* neither side waits a meaningful share of the window — **balanced**.

The run-level ``bottleneck`` is the stage with the highest per-replica
utilization over the window (busy seconds per replica per wall second),
the live analogue of :meth:`repro.core.metrics.RunResult.bottleneck`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: edge attribution verdicts
PRODUCER_LIMITED = "producer-limited"
CONSUMER_LIMITED = "consumer-limited"
BALANCED = "balanced"

#: a side must wait at least this fraction of the window to be "limited"
_WAIT_MIN_SHARE = 0.05

#: and dominate the opposite side by at least this factor
_WAIT_DOMINANCE = 1.5


def attribute_edge(put_wait_share: float, get_wait_share: float) -> str:
    """Classify one edge from the window's wait-span ratios.

    ``put_wait_share``/``get_wait_share`` are wait seconds accumulated by
    the edge's producers/consumers divided by the window length (they can
    exceed 1.0 when several units share the edge).
    """
    if put_wait_share < _WAIT_MIN_SHARE and get_wait_share < _WAIT_MIN_SHARE:
        return BALANCED
    if put_wait_share > get_wait_share * _WAIT_DOMINANCE:
        return CONSUMER_LIMITED
    if get_wait_share > put_wait_share * _WAIT_DOMINANCE:
        return PRODUCER_LIMITED
    return BALANCED


@dataclass(frozen=True)
class StageWindow:
    """One unit's (source/stage/sequencer) activity over one window."""

    name: str
    kind: str                  #: "source" | "stage" | "sequencer"
    replicas: int
    items_in: int              #: envelopes consumed this window
    items_out: int             #: payloads emitted this window
    throughput: float          #: items_in per second of window
    busy_time: float           #: service seconds accumulated this window
    utilization: float         #: busy_time / (window * replicas)
    service_p50: float         #: windowed service-time quantiles (seconds)
    service_p95: float
    service_p99: float
    token_wait: float = 0.0    #: source blocked on the token gate (seconds)
    total_items_in: int = 0    #: cumulative since the registry was created
    total_items_out: int = 0
    in_edge: Optional[str] = None   #: channel feeding this unit (controller hook)
    out_edge: Optional[str] = None  #: channel this unit produces into

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "kind": self.kind, "replicas": self.replicas,
            "items_in": self.items_in, "items_out": self.items_out,
            "throughput": self.throughput, "busy_time": self.busy_time,
            "utilization": self.utilization,
            "service_p50": self.service_p50, "service_p95": self.service_p95,
            "service_p99": self.service_p99, "token_wait": self.token_wait,
            "total_items_in": self.total_items_in,
            "total_items_out": self.total_items_out,
            "in_edge": self.in_edge, "out_edge": self.out_edge,
        }


@dataclass(frozen=True)
class EdgeWindow:
    """One channel's backpressure picture over one window."""

    name: str
    occupancy: float           #: queued items at sample time (all queues)
    put_wait: float            #: producer wait seconds this window
    get_wait: float            #: consumer wait seconds this window
    put_wait_share: float      #: put_wait / window
    get_wait_share: float      #: get_wait / window
    attribution: str           #: producer-limited | consumer-limited | balanced

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "occupancy": self.occupancy,
            "put_wait": self.put_wait, "get_wait": self.get_wait,
            "put_wait_share": self.put_wait_share,
            "get_wait_share": self.get_wait_share,
            "attribution": self.attribution,
        }


@dataclass(frozen=True)
class TelemetrySnapshot:
    """The registry's state over one tumbling window, immutable."""

    seq: int                   #: 1-based snapshot number within the registry
    t_start: float             #: window bounds on the run's clock (wall or
    t_end: float               #: virtual seconds, executor-dependent)
    stages: Dict[str, StageWindow] = field(default_factory=dict)
    edges: Dict[str, EdgeWindow] = field(default_factory=dict)
    #: stage with the highest per-replica utilization this window (None
    #: when nothing processed an item)
    bottleneck: Optional[str] = None

    @property
    def window(self) -> float:
        return self.t_end - self.t_start

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "window": self.window,
            "bottleneck": self.bottleneck,
            "stages": {k: v.as_dict() for k, v in sorted(self.stages.items())},
            "edges": {k: v.as_dict() for k, v in sorted(self.edges.items())},
        }
