"""Live telemetry: lock-free unit probes, a merging sampler, snapshots.

This layer sits *under* the tracer: where :class:`~repro.obs.tracer`
records every event for post-hoc export, the metrics registry keeps a
handful of cumulative counters per unit that a background sampler turns
into :class:`~repro.obs.snapshot.TelemetrySnapshot` windows while the
pipeline is still running.  Design rules, in FastFlow's lock-free
spirit:

* **Single-writer shards.**  Each unit thread owns a
  :class:`UnitProbe`; all fields are written by that thread only, with
  plain ``+=`` on ints/floats and list-slot increments — atomic enough
  under the GIL for a reader that tolerates a torn *view* (counters are
  monotone, so the sampler's diff is at worst one item stale).  No locks
  on the hot path, ever.
* **Cumulative counters, windowed reader.**  Probes only ever grow;
  tumbling-window semantics live entirely in the :class:`Sampler`,
  which diffs consecutive merged states.  This keeps the writer branch
  count minimal and makes cross-process shipping idempotent (a lost
  delta is healed by the next cumulative payload).
* **Sampled wait timing.**  Timing every channel wait costs two
  ``perf_counter`` calls per op; probes time one op in ``wait_sample``
  (default 4) and scale the observed wait, keeping metrics-on overhead
  within the <5 % budget measured by ``benchmarks/bench_pipeline.py``.

The process executor ships child-side registries as pickled cumulative
payloads (:meth:`MetricsRegistry.export_state` →
:meth:`MetricsRegistry.apply_remote`) over a dedicated
:class:`~repro.core.channel.ShmChannel`, so ``workers="process"`` runs
report the same live view as threads.
"""

from __future__ import annotations

import contextlib
import math
import threading
import zlib
from collections import deque
from contextvars import ContextVar
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.obs.clock import Clock
from repro.obs.snapshot import (
    EdgeWindow,
    StageWindow,
    TelemetrySnapshot,
    attribute_edge,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import ExecConfig

#: histogram geometry: octave (power-of-two) buckets covering ~2^-32 s
#: (sub-ns) .. 2^15 s (~9 h); bucket i holds services in
#: [2^(i-33), 2^(i-32)).
N_BUCKETS = 48
_BUCKET_BIAS = 32

#: default 1-in-N sampling factor for wait timing on the hot path
DEFAULT_WAIT_SAMPLE = 4

#: keep this many recent snapshots on the registry (~1 min at 250 ms)
_HISTORY = 240


def bucket_index(seconds: float) -> int:
    """Octave bucket for a service time, via ``frexp`` (no log call)."""
    if seconds <= 0.0:
        return 0
    i = math.frexp(seconds)[1] + _BUCKET_BIAS
    if i < 0:
        return 0
    if i >= N_BUCKETS:
        return N_BUCKETS - 1
    return i


def bucket_upper(index: int) -> float:
    """Upper bound (seconds) of bucket ``index``."""
    return 2.0 ** (index - _BUCKET_BIAS)


class UnitProbe:
    """Single-writer counter shard for one unit thread.

    Created via :meth:`MetricsRegistry.unit_probe`; the owning thread is
    the only writer.  The sampler reads fields without synchronisation —
    every field is monotone, so stale reads only shift an item between
    adjacent windows.
    """

    __slots__ = ("kind", "name", "replicas", "in_edge", "out_edge",
                 "items_in", "items_out", "busy", "get_wait", "put_wait",
                 "token_wait", "hist", "wait_scale", "_get_n", "_put_n",
                 "_get_gap", "_put_gap", "_rng")

    def __init__(self, kind: str, name: str, replicas: int = 1,
                 in_edge: Optional[str] = None, out_edge: Optional[str] = None,
                 wait_sample: int = DEFAULT_WAIT_SAMPLE) -> None:
        self.kind = kind
        self.name = name
        self.replicas = replicas
        self.in_edge = in_edge
        self.out_edge = out_edge
        self.items_in = 0
        self.items_out = 0
        self.busy = 0.0
        self.get_wait = 0.0
        self.put_wait = 0.0
        self.token_wait = 0.0
        self.hist = [0] * N_BUCKETS
        self.wait_scale = float(max(1, wait_sample))
        # Sampling gaps are drawn from a per-probe LCG (seeded from the
        # unit name, so runs stay reproducible) instead of a fixed
        # period: a fixed 1-in-N tick phase-locks against round-robin
        # fan-out whenever N shares a factor with the consumer count,
        # and then only ever samples the ring that never blocks —
        # reporting zero producer wait on a fully backpressured edge.
        self._rng = zlib.crc32(f"{kind}:{name}".encode()) or 1
        self._get_n = 0
        self._put_n = 0
        self._get_gap = self._next_gap()
        self._put_gap = self._next_gap()

    def _next_gap(self) -> int:
        """Next sampling gap: uniform on [1, 2N-1], mean N."""
        self._rng = (self._rng * 1103515245 + 12345) & 0x7FFFFFFF
        span = 2 * int(self.wait_scale) - 1
        return 1 + self._rng % span

    # -- hot path --------------------------------------------------------
    def record(self, service: float, emitted: int,
               _frexp=math.frexp) -> None:
        """One item handled: service seconds and payloads emitted.

        ``bucket_index`` is inlined (with ``frexp`` pre-bound): this runs
        once per item on every metered stage, so one avoided function
        call is worth the duplication.
        """
        self.items_in += 1
        self.items_out += emitted
        self.busy += service
        if service > 0.0:
            i = _frexp(service)[1] + _BUCKET_BIAS
            if i < 0:
                i = 0
            elif i >= N_BUCKETS:
                i = N_BUCKETS - 1
        else:
            i = 0
        self.hist[i] += 1

    def record_batch(self, service: float, count: int, emitted: int,
                     _frexp=math.frexp) -> None:
        """``count`` logical items handled by one batched (block) call.

        O(1) regardless of the block size: the histogram credits every
        item with its mean share of the call, keeping occupancy and rate
        figures identical to the scalar path's per-item accounting.
        """
        if count <= 0:
            return
        self.items_in += count
        self.items_out += emitted
        self.busy += service
        per = service / count
        if per > 0.0:
            i = _frexp(per)[1] + _BUCKET_BIAS
            if i < 0:
                i = 0
            elif i >= N_BUCKETS:
                i = N_BUCKETS - 1
        else:
            i = 0
        self.hist[i] += count

    def emitted(self, n: int = 1) -> None:
        """Source-side: ``n`` payloads pushed downstream."""
        self.items_out += n

    def passed(self, n: int = 1) -> None:
        """Pass-through units (sequencer): count without service time."""
        self.items_in += n
        self.items_out += n

    def tick_get(self) -> bool:
        """True on the 1-in-N-mean get ops whose wait should be timed."""
        n = self._get_n + 1
        if n >= self._get_gap:
            self._get_n = 0
            self._get_gap = self._next_gap()
            return True
        self._get_n = n
        return False

    def tick_put(self) -> bool:
        """True on the 1-in-N-mean put ops whose wait should be timed."""
        n = self._put_n + 1
        if n >= self._put_gap:
            self._put_n = 0
            self._put_gap = self._next_gap()
            return True
        self._put_n = n
        return False

    # sampled adders scale the observed wait back up to estimate the
    # total; *_raw variants are for call sites that time every op
    # (batched outbox flushes, the virtual-time sim executor).
    def sampled_get_wait(self, dt: float) -> None:
        self.get_wait += dt * self.wait_scale

    def sampled_put_wait(self, dt: float) -> None:
        self.put_wait += dt * self.wait_scale

    def sampled_token_wait(self, dt: float) -> None:
        self.token_wait += dt * self.wait_scale

    def get_waited(self, dt: float) -> None:
        self.get_wait += dt

    def put_waited(self, dt: float) -> None:
        self.put_wait += dt

    def token_waited(self, dt: float) -> None:
        self.token_wait += dt

    # -- sampler side ----------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Picklable cumulative state (also the cross-process format)."""
        return {
            "kind": self.kind, "name": self.name, "replicas": self.replicas,
            "in_edge": self.in_edge, "out_edge": self.out_edge,
            "items_in": self.items_in, "items_out": self.items_out,
            "busy": self.busy, "get_wait": self.get_wait,
            "put_wait": self.put_wait, "token_wait": self.token_wait,
            "hist": tuple(self.hist),
        }


def _fold_state(units: Dict[str, Dict[str, Any]], st: Dict[str, Any]) -> None:
    """Merge one probe state into the by-name accumulation."""
    u = units.get(st["name"])
    if u is None:
        u = dict(st)
        u["hist"] = list(st["hist"])
        units[st["name"]] = u
        return
    for k in ("items_in", "items_out", "busy", "get_wait", "put_wait",
              "token_wait"):
        u[k] += st[k]
    u["replicas"] = max(u["replicas"], st["replicas"])
    h = u["hist"]
    for i, c in enumerate(st["hist"]):
        if c:
            h[i] += c
    if u.get("in_edge") is None:
        u["in_edge"] = st.get("in_edge")
    if u.get("out_edge") is None:
        u["out_edge"] = st.get("out_edge")


def _hist_quantile(hist: List[int], total: int, q: float) -> float:
    """q-quantile (0..1) upper-bound estimate from an octave histogram."""
    if total <= 0:
        return 0.0
    rank = max(1, math.ceil(total * q))
    seen = 0
    for i, c in enumerate(hist):
        seen += c
        if seen >= rank:
            return bucket_upper(i)
    return bucket_upper(N_BUCKETS - 1)


class MetricsRegistry:
    """Hosts the probes, edge gauges, remote deltas and snapshots.

    Registration and collection take a lock; the per-item hot path never
    touches it (probes are handed out once per unit thread at spawn).
    """

    def __init__(self, wait_sample: int = DEFAULT_WAIT_SAMPLE) -> None:
        self.wait_sample = max(1, int(wait_sample))
        self._lock = threading.Lock()
        self._probes: List[UnitProbe] = []
        self._gauges: Dict[str, Callable[[], float]] = {}
        #: origin key (e.g. process group index) -> latest cumulative payload
        self._remote: Dict[Any, Dict[str, Any]] = {}
        self._subscribers: List[Callable[[TelemetrySnapshot], None]] = []
        self.latest: Optional[TelemetrySnapshot] = None
        self.history: deque = deque(maxlen=_HISTORY)
        #: bound HTTP port while a MetricsServer is serving this registry
        self.http_port: Optional[int] = None
        #: autonomic-controller feed: recent actions + live lever values
        #: (``replicas``/``blocking``/``batch``), rendered as Prometheus
        #: gauges by :mod:`repro.obs.promhttp` and drained by the harness
        #: ``--live`` ticker
        self.control_events: deque = deque(maxlen=_HISTORY)
        self.control_state: Dict[str, Any] = {}
        self.control_actions_total: Dict[str, int] = {}

    def record_control(self, event: Dict[str, Any]) -> None:
        """Record one controller action (called from the sampler thread)."""
        with self._lock:
            self.control_events.append(event)
            action = str(event.get("action", "unknown"))
            self.control_actions_total[action] = (
                self.control_actions_total.get(action, 0) + 1)

    def set_control_state(self, key: str, value: Any) -> None:
        """Publish a live lever value (e.g. ``("replicas", {...})``)."""
        with self._lock:
            self.control_state[key] = value

    # -- registration ----------------------------------------------------
    def unit_probe(self, kind: str, name: str, replicas: int = 1,
                   in_edge: Optional[str] = None,
                   out_edge: Optional[str] = None) -> UnitProbe:
        """New single-writer shard; call once per unit thread at spawn."""
        probe = UnitProbe(kind, name, replicas, in_edge, out_edge,
                          wait_sample=self.wait_sample)
        with self._lock:
            self._probes.append(probe)
        return probe

    def edge_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a queue-occupancy gauge sampled at snapshot time."""
        with self._lock:
            self._gauges[name] = fn

    def subscribe(self, fn: Callable[[TelemetrySnapshot], None]) -> None:
        """Add a snapshot subscriber (the SnapshotSubscriber API).

        Called from the sampler thread on every tick; exceptions are
        swallowed so a bad subscriber cannot kill telemetry.
        """
        with self._lock:
            self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[TelemetrySnapshot], None]) -> None:
        with self._lock:
            with contextlib.suppress(ValueError):
                self._subscribers.remove(fn)

    # -- cross-process shipping ------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """Cumulative picklable payload of all local probes and gauges."""
        with self._lock:
            probes = list(self._probes)
            gauges = dict(self._gauges)
        units = [p.state() for p in probes]
        gauge_values: Dict[str, float] = {}
        for name, fn in gauges.items():
            try:
                gauge_values[name] = float(fn())
            except Exception:
                continue
        return {"units": units, "gauges": gauge_values}

    def apply_remote(self, origin: Any, payload: Dict[str, Any]) -> None:
        """Install a child registry's cumulative payload (latest wins)."""
        with self._lock:
            self._remote[origin] = payload

    # -- collection (sampler side) ---------------------------------------
    def collect(self) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, float]]:
        """Merged cumulative state: (units by name, gauge values)."""
        with self._lock:
            probes = list(self._probes)
            gauges = dict(self._gauges)
            remotes = list(self._remote.values())
        units: Dict[str, Dict[str, Any]] = {}
        for p in probes:
            _fold_state(units, p.state())
        for payload in remotes:
            for st in payload.get("units", ()):
                _fold_state(units, st)
        gauge_values: Dict[str, float] = {}
        for name, fn in gauges.items():
            try:
                gauge_values[name] = float(fn())
            except Exception:
                continue
        for payload in remotes:
            gauge_values.update(payload.get("gauges", {}))
        return units, gauge_values

    def publish(self, snap: TelemetrySnapshot) -> None:
        """Install ``snap`` as latest and notify subscribers."""
        with self._lock:
            self.latest = snap
            self.history.append(snap)
            subscribers = list(self._subscribers)
        for fn in subscribers:
            try:
                fn(snap)
            except Exception:
                pass


def build_snapshot(seq: int, t_start: float, t_end: float,
                   prev_units: Dict[str, Dict[str, Any]],
                   cur_units: Dict[str, Dict[str, Any]],
                   prev_edges: Dict[str, Tuple[float, float]],
                   gauges: Dict[str, float]) -> TelemetrySnapshot:
    """Diff two cumulative states into one tumbling-window snapshot."""
    window = max(t_end - t_start, 1e-9)
    stages: Dict[str, StageWindow] = {}
    # edge name -> [cumulative put_wait, cumulative get_wait]
    edge_cum: Dict[str, List[float]] = {}
    for name, st in cur_units.items():
        p = prev_units.get(name)
        d_in = st["items_in"] - (p["items_in"] if p else 0)
        d_out = st["items_out"] - (p["items_out"] if p else 0)
        d_busy = st["busy"] - (p["busy"] if p else 0.0)
        d_token = st["token_wait"] - (p["token_wait"] if p else 0.0)
        if p:
            d_hist = [c - q for c, q in zip(st["hist"], p["hist"])]
        else:
            d_hist = list(st["hist"])
        d_n = sum(d_hist)
        replicas = max(1, st["replicas"])
        # A source consumes nothing: its rate is what it emitted.
        d_rate = d_out if st["kind"] == "source" else d_in
        stages[name] = StageWindow(
            name=name, kind=st["kind"], replicas=replicas,
            items_in=d_in, items_out=d_out,
            throughput=d_rate / window,
            busy_time=d_busy,
            utilization=max(0.0, d_busy / (window * replicas)),
            service_p50=_hist_quantile(d_hist, d_n, 0.50),
            service_p95=_hist_quantile(d_hist, d_n, 0.95),
            service_p99=_hist_quantile(d_hist, d_n, 0.99),
            token_wait=d_token,
            total_items_in=st["items_in"],
            total_items_out=st["items_out"],
            in_edge=st.get("in_edge"),
            out_edge=st.get("out_edge"),
        )
        if st.get("out_edge"):
            edge_cum.setdefault(st["out_edge"], [0.0, 0.0])[0] += st["put_wait"]
        if st.get("in_edge"):
            edge_cum.setdefault(st["in_edge"], [0.0, 0.0])[1] += st["get_wait"]
    edges: Dict[str, EdgeWindow] = {}
    for name in set(edge_cum) | set(gauges):
        cum_pw, cum_gw = edge_cum.get(name, (0.0, 0.0))
        prev_pw, prev_gw = prev_edges.get(name, (0.0, 0.0))
        d_pw = max(0.0, cum_pw - prev_pw)
        d_gw = max(0.0, cum_gw - prev_gw)
        pw_share = d_pw / window
        gw_share = d_gw / window
        edges[name] = EdgeWindow(
            name=name, occupancy=gauges.get(name, 0.0),
            put_wait=d_pw, get_wait=d_gw,
            put_wait_share=pw_share, get_wait_share=gw_share,
            attribution=attribute_edge(pw_share, gw_share),
        )
    bottleneck: Optional[str] = None
    best = 0.0
    for name, sw in sorted(stages.items()):
        if sw.kind == "sequencer" or sw.items_in <= 0:
            continue
        if sw.utilization > best:
            best = sw.utilization
            bottleneck = name
    snap = TelemetrySnapshot(seq=seq, t_start=t_start, t_end=t_end,
                             stages=stages, edges=edges, bottleneck=bottleneck)
    return snap


class Sampler:
    """Periodically snapshots a registry into tumbling windows.

    Two modes: a daemon thread ticking every ``interval`` wall seconds
    (native/process executors), or manual ticking via :meth:`maybe_tick`
    from the event loop of the simulated executor, whose
    :class:`~repro.obs.clock.SimClock` runs on virtual time a sampler
    thread could not follow.
    """

    def __init__(self, registry: MetricsRegistry, clock: Clock,
                 interval: float = 0.25) -> None:
        self.registry = registry
        self.clock = clock
        self.interval = interval
        self._seq = 0
        self._prev_t = clock.now()
        # baseline at creation so a registry reused across runs does not
        # fold earlier runs' totals into this run's first window
        units, gauges = registry.collect()
        self._prev_units = units
        self._prev_edges = self._edge_cumulative(units)
        self._tick_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @staticmethod
    def _edge_cumulative(units: Dict[str, Dict[str, Any]],
                         ) -> Dict[str, Tuple[float, float]]:
        edges: Dict[str, List[float]] = {}
        for st in units.values():
            if st.get("out_edge"):
                edges.setdefault(st["out_edge"], [0.0, 0.0])[0] += st["put_wait"]
            if st.get("in_edge"):
                edges.setdefault(st["in_edge"], [0.0, 0.0])[1] += st["get_wait"]
        return {k: (v[0], v[1]) for k, v in edges.items()}

    def tick(self) -> TelemetrySnapshot:
        """Close the current window and publish its snapshot."""
        with self._tick_lock:
            now = self.clock.now()
            units, gauges = self.registry.collect()
            self._seq += 1
            snap = build_snapshot(self._seq, self._prev_t, now,
                                  self._prev_units, units,
                                  self._prev_edges, gauges)
            self._prev_t = now
            self._prev_units = units
            self._prev_edges = self._edge_cumulative(units)
        self.registry.publish(snap)
        return snap

    def maybe_tick(self) -> Optional[TelemetrySnapshot]:
        """Manual mode: tick if at least one interval has elapsed."""
        if self.clock.now() - self._prev_t >= self.interval:
            return self.tick()
        return None

    # -- thread mode -----------------------------------------------------
    def start(self) -> None:
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="metrics-sampler", daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.tick()

    def stop(self) -> None:
        """Stop the thread (if any) and take one final snapshot."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.tick()


class LiveTelemetry:
    """Bundles registry + sampler + optional HTTP endpoint for one run.

    Built by the executors from :class:`~repro.core.config.ExecConfig`
    (explicit ``metrics_registry``, the ambient registry installed by
    :func:`use_registry`, or auto-created when ``metrics_port`` is set).
    """

    def __init__(self, registry: MetricsRegistry, clock: Clock,
                 interval: float = 0.25, port: Optional[int] = None,
                 manual: bool = False) -> None:
        self.registry = registry
        self.sampler = Sampler(registry, clock, interval)
        self.interval = interval
        self._port = port
        self._manual = manual
        self._server: Optional[Any] = None

    @classmethod
    def from_config(cls, config: "ExecConfig", clock: Clock,
                    manual: bool = False) -> Optional["LiveTelemetry"]:
        """Resolve the run's telemetry, or None when metrics are off.

        A :class:`~repro.control.TuningPolicy` on the config (or
        installed ambiently) forces telemetry on — the controller is a
        snapshot subscriber and cannot act without windows.  The
        policy's ``window`` overrides ``metrics_interval`` when set.
        """
        policy = config.resolved_policy() if hasattr(
            config, "resolved_policy") else getattr(config, "policy", None)
        registry = config.metrics_registry
        if registry is None:
            registry = current_registry()
        if registry is None and config.metrics_port is None and policy is None:
            return None
        if registry is None:
            registry = MetricsRegistry()
        interval = config.metrics_interval
        if policy is not None and policy.window is not None:
            interval = policy.window
        return cls(registry, clock, interval=interval,
                   port=config.metrics_port, manual=manual)

    def start(self) -> None:
        if self._port is not None:
            from repro.obs.promhttp import MetricsServer
            self._server = MetricsServer(self.registry, port=self._port)
            self._server.start()
            self.registry.http_port = self._server.port
        if not self._manual:
            self.sampler.start()

    def maybe_tick(self) -> None:
        """Manual-mode window check (sim executor item loop)."""
        self.sampler.maybe_tick()

    def stop(self) -> Dict[str, Any]:
        """Final tick, shut the endpoint down, return a result summary."""
        self.sampler.stop()
        http_port = self.registry.http_port
        if self._server is not None:
            self._server.stop()
            self._server = None
            self.registry.http_port = None
        snap = self.registry.latest
        summary: Dict[str, Any] = {
            "snapshots": snap.seq if snap is not None else 0,
            "final": snap.as_dict() if snap is not None else None,
        }
        if http_port is not None:
            summary["http_port"] = http_port
        if self.registry.control_events:
            summary["control"] = {
                "events": list(self.registry.control_events),
                "actions_total": dict(self.registry.control_actions_total),
            }
        return summary


_REGISTRY: ContextVar[Optional[MetricsRegistry]] = ContextVar(
    "repro_metrics_registry", default=None)


def current_registry() -> Optional[MetricsRegistry]:
    """The ambient registry installed by :func:`use_registry`, if any."""
    return _REGISTRY.get()


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` ambiently: runs inside the block report to it
    without threading it through :class:`~repro.core.config.ExecConfig`
    (mirrors :func:`~repro.obs.tracer.use_tracer`)."""
    token = _REGISTRY.set(registry)
    try:
        yield registry
    finally:
        _REGISTRY.reset(token)
