"""Trace exporters: Chrome ``trace_event`` JSON and a raw summary JSON.

The Chrome format (one ``{"traceEvents": [...]}`` object) loads directly
in ``chrome://tracing`` or https://ui.perfetto.dev.  Mapping:

* each executor run recorded by the tracer becomes one *process* (pid);
* each track (stage replica, queue, GPU engine) becomes one *thread*
  (tid), labeled via ``thread_name`` metadata events;
* spans are complete events (``ph:"X"``), occupancy samples counter
  events (``ph:"C"``), markers instant events (``ph:"i"``);
* timestamps are microseconds — wall or virtual depending on the
  executor's clock; both render fine since Chrome only needs a
  monotonic axis.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.tracer import SpanRecorder


def chrome_trace(recorder: SpanRecorder) -> Dict[str, Any]:
    """Convert a recorder's events into a Chrome ``trace_event`` document."""
    events: List[Dict[str, Any]] = []
    tids: Dict[tuple, int] = {}

    def tid_for(run: int, track: str) -> int:
        key = (run, track)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": run, "tid": tid,
                "args": {"name": track},
            })
        return tid

    for info in recorder.runs:
        events.append({
            "ph": "M", "name": "process_name", "pid": info.index,
            "args": {"name": f"{info.name} [{info.mode}]"},
        })

    for s in recorder.spans:
        ev: Dict[str, Any] = {
            "ph": "X", "cat": s.cat, "name": s.name, "pid": s.run,
            "tid": tid_for(s.run, s.track),
            "ts": s.start * 1e6, "dur": max((s.end - s.start) * 1e6, 0.0),
        }
        if s.args:
            ev["args"] = s.args
        events.append(ev)

    for c in recorder.counters:
        events.append({
            "ph": "C", "name": c.track, "pid": c.run,
            "ts": c.t * 1e6, "args": {c.name: c.value},
        })

    for i in recorder.instants:
        ev = {
            "ph": "i", "s": "t", "name": i.name, "pid": i.run,
            "tid": tid_for(i.run, i.track), "ts": i.t * 1e6,
        }
        if i.args:
            ev["args"] = i.args
        events.append(ev)

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def trace_summary(recorder: SpanRecorder) -> Dict[str, Any]:
    """Raw JSON-serializable dump: runs, span/counter counts, histograms."""
    return {
        "runs": [
            {"index": r.index, "name": r.name, "mode": r.mode,
             "makespan": r.makespan, **({"meta": r.meta} if r.meta else {})}
            for r in recorder.runs
        ],
        "n_spans": len(recorder.spans),
        "n_counters": len(recorder.counters),
        "n_instants": len(recorder.instants),
        "track_types": sorted(recorder.track_types()),
        "histograms": {
            f"{name}//{track}": h.as_dict()
            for (name, track), h in sorted(recorder.histograms.items())
        },
    }


def write_chrome_trace(recorder: SpanRecorder, path: str) -> str:
    """Write the Chrome ``trace_event`` JSON to ``path``; returns it."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(chrome_trace(recorder), f)
    return path


def write_trace_json(recorder: SpanRecorder, path: str) -> str:
    """Write the raw summary JSON to ``path``; returns it."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(trace_summary(recorder), f, indent=2)
    return path
