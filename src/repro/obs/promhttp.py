"""Prometheus text-exposition endpoint for a live MetricsRegistry.

Stdlib-only (``http.server``): a daemon :class:`MetricsServer` renders
the registry's latest :class:`~repro.obs.snapshot.TelemetrySnapshot` as
Prometheus text exposition format 0.0.4 on ``GET /metrics``.  Opt in
per run via ``ExecConfig.metrics_port`` (0 binds an ephemeral port,
published on ``registry.http_port``), e.g.::

    curl -s http://127.0.0.1:9105/metrics | grep repro_bottleneck

:func:`parse_exposition` is a small validating parser used by the tests
and the CI smoke job to check the format without a prometheus client.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

class MetricsPortError(RuntimeError):
    """``metrics_port`` could not be bound (typically already in use)."""


_METRIC_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)(?:\s+(-?\d+))?$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_VALID_TYPES = frozenset(
    {"counter", "gauge", "histogram", "summary", "untyped"})


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def render_exposition(registry: "MetricsRegistry") -> str:
    """Render the latest snapshot (plus cumulative totals) as text 0.0.4."""
    snap = registry.latest
    lines: List[str] = []

    def family(name: str, help_text: str, mtype: str,
               samples: List[Tuple[str, float]]) -> None:
        if not samples:
            return
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")
        for labels, value in samples:
            body = f"{{{labels}}}" if labels else ""
            lines.append(f"{name}{body} {value!r}")

    def opt_families() -> None:
        # optimizer caches are process-global module state (not per-run),
        # so these families are live even before the first snapshot
        from repro.core.opt import bodycomp_stats, kernel_cache_stats
        cache = kernel_cache_stats()
        family("repro_opt_kernel_cache_hits",
               "Batch-kernel cache lookups served from cache.", "counter",
               [("", float(cache["hits"]))])
        family("repro_opt_kernel_cache_misses",
               "Batch-kernel cache lookups that compiled.", "counter",
               [("", float(cache["misses"]))])
        family("repro_opt_compiled_stages",
               "Distinct scalar bodies derived into batch kernels.",
               "gauge",
               [("", float(bodycomp_stats()["compiled"]))])

    if snap is None:
        family("repro_snapshot_seq", "Telemetry snapshots published.",
               "counter", [("", 0.0)])
        opt_families()
        return "\n".join(lines) + "\n"

    family("repro_snapshot_seq", "Telemetry snapshots published.",
           "counter", [("", float(snap.seq))])
    family("repro_snapshot_window_seconds",
           "Length of the last tumbling window.", "gauge",
           [("", snap.window)])

    stages = sorted(snap.stages.items())
    family("repro_stage_items_in_total",
           "Items consumed by the unit since the registry was created.",
           "counter",
           [(f'stage="{_escape(n)}",kind="{s.kind}"',
             float(s.total_items_in)) for n, s in stages])
    family("repro_stage_items_out_total",
           "Payloads emitted by the unit since the registry was created.",
           "counter",
           [(f'stage="{_escape(n)}",kind="{s.kind}"',
             float(s.total_items_out)) for n, s in stages])
    family("repro_stage_throughput_items_per_second",
           "Items consumed per second over the last window.", "gauge",
           [(f'stage="{_escape(n)}"', s.throughput) for n, s in stages])
    family("repro_stage_utilization_ratio",
           "Busy time per replica per second over the last window.",
           "gauge",
           [(f'stage="{_escape(n)}"', s.utilization) for n, s in stages])
    quantiles: List[Tuple[str, float]] = []
    for n, s in stages:
        for q, v in (("0.5", s.service_p50), ("0.95", s.service_p95),
                     ("0.99", s.service_p99)):
            quantiles.append((f'stage="{_escape(n)}",quantile="{q}"', v))
    family("repro_stage_service_seconds",
           "Windowed service-time quantiles (octave-bucket upper bounds).",
           "summary", quantiles)

    edges = sorted(snap.edges.items())
    family("repro_edge_occupancy",
           "Items queued on the edge at sample time.", "gauge",
           [(f'edge="{_escape(n)}"', e.occupancy) for n, e in edges])
    family("repro_edge_put_wait_seconds",
           "Producer wait on the edge over the last window.", "gauge",
           [(f'edge="{_escape(n)}"', e.put_wait) for n, e in edges])
    family("repro_edge_get_wait_seconds",
           "Consumer wait on the edge over the last window.", "gauge",
           [(f'edge="{_escape(n)}"', e.get_wait) for n, e in edges])
    family("repro_edge_attribution",
           "Backpressure verdict for the edge (1 on the active state).",
           "gauge",
           [(f'edge="{_escape(n)}",state="{e.attribution}"', 1.0)
            for n, e in edges])
    if snap.bottleneck is not None:
        family("repro_bottleneck",
               "Stage with the highest per-replica utilization.", "gauge",
               [(f'stage="{_escape(snap.bottleneck)}"', 1.0)])

    # autonomic-controller levers (populated only when a TuningPolicy
    # is active; every value is the live setting, not the configured one)
    replicas = registry.control_state.get("replicas") or {}
    family("repro_stage_replicas",
           "Live replica count of each elastic farm segment.", "gauge",
           [(f'stage="{_escape(n)}"', float(v))
            for n, v in sorted(replicas.items())])
    blocking = registry.control_state.get("blocking") or {}
    family("repro_edge_blocking",
           "Wait discipline per edge (1 = blocking, 0 = spinning).",
           "gauge",
           [(f'edge="{_escape(n)}"', 1.0 if v else 0.0)
            for n, v in sorted(blocking.items())])
    batch = registry.control_state.get("batch")
    if batch is not None:
        family("repro_batch_size", "Live producer batch size.", "gauge",
               [("", float(batch))])
    family("repro_controller_actions_total",
           "Controller actions applied or refused, by kind.", "counter",
           [(f'action="{_escape(a)}"', float(v))
            for a, v in sorted(registry.control_actions_total.items())])
    opt_families()
    return "\n".join(lines) + "\n"


def parse_exposition(text: str,
                     ) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse/validate exposition text; raises ValueError on bad lines.

    Returns metric name -> list of (labels, value) samples.  Checks the
    subset of the 0.0.4 format we emit: HELP/TYPE comment shape, known
    metric types, metric-name/label syntax, float-parsable values.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment: {line!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _VALID_TYPES:
                    raise ValueError(
                        f"line {lineno}: bad TYPE line: {line!r}")
                typed[parts[2]] = parts[3]
            continue
        m = _METRIC_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name, label_body, value_text = m.group(1), m.group(2), m.group(3)
        labels: Dict[str, str] = {}
        if label_body:
            for lm in _LABEL_RE.finditer(label_body):
                labels[lm.group(1)] = (
                    lm.group(2).replace(r"\n", "\n")
                    .replace(r"\"", '"').replace(r"\\", "\\"))
            residue = _LABEL_RE.sub("", label_body).replace(",", "").strip()
            if residue:
                raise ValueError(
                    f"line {lineno}: malformed labels: {label_body!r}")
        try:
            value = float(value_text)
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad value {value_text!r}") from exc
        samples.setdefault(name, []).append((labels, value))
    for name in samples:
        if name not in typed:
            raise ValueError(f"metric {name!r} has samples but no TYPE line")
    return samples


class MetricsServer:
    """Serves ``/metrics`` for one registry on a daemon thread."""

    def __init__(self, registry: "MetricsRegistry", port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self.registry = registry
        self._host = host
        self._want_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> Optional[int]:
        """The bound port (differs from the request when asking for 0)."""
        return None if self._httpd is None else self._httpd.server_address[1]

    def start(self) -> None:
        registry = self.registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404)
                    return
                body = render_exposition(registry).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type",
                                 "text/plain; version=0.0.4; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: object) -> None:
                pass  # keep run output clean

        try:
            self._httpd = ThreadingHTTPServer((self._host, self._want_port),
                                              Handler)
        except OSError as exc:
            raise MetricsPortError(
                f"cannot bind the metrics endpoint to "
                f"{self._host}:{self._want_port}: {exc.strerror or exc}. "
                f"Pass metrics_port=0 to bind an ephemeral port (the bound "
                f"port is published in RunResult.details['telemetry']"
                f"['http_port'])."
            ) from exc
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="metrics-http", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
