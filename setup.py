"""Shim for environments without the `wheel` package (offline CI).

`pip install -e .` with modern PEP-660 editable installs requires the
`wheel` backend; this setup.py lets pip fall back to the legacy
`setup.py develop` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
